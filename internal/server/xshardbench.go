package server

import (
	"context"
	"fmt"
	"io"
	"time"
)

// XShardBenchConfig parameterizes BenchXShard: a transfer-mix sweep
// against one in-process sharded server. The residual (non-transfer) mix
// is pure Add — the write-heavy single-shard pattern the cross-shard
// protocol must not slow down.
type XShardBenchConfig struct {
	TransferPcts []int   `json:"transfer_pcts"` // swept transfer percentages (default 10,20,30,50)
	Shards       int     `json:"shards"`        // server shard count (default 4)
	Workers      int     `json:"workers"`       // server workers (default 8)
	Batch        int     `json:"batch"`         // server batch cap (default 48)
	Conns        int     `json:"conns"`         // pipelined client connections (default 16)
	Window       int     `json:"window"`        // requests in flight per connection (default 96)
	OpsPerConn   int     `json:"ops_per_conn"`  // fixed work per connection per run (default 12000)
	Keys         int     `json:"keys"`          // key-space size (default 2816)
	Skew         float64 `json:"skew"`          // key skew exponent (default 1 = uniform)
	Runs         int     `json:"runs"`          // measured runs per point (default 5)

	Progress io.Writer `json:"-"`
}

func (cfg XShardBenchConfig) normalize() XShardBenchConfig {
	if len(cfg.TransferPcts) == 0 {
		cfg.TransferPcts = []int{10, 20, 30, 50}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 48
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 16
	}
	if cfg.Window <= 1 {
		cfg.Window = 96
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 12000
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 2816
	}
	if cfg.Skew < 1 {
		cfg.Skew = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	return cfg
}

// XShardPoint is one transfer percentage's aggregate over the measured
// runs.
type XShardPoint struct {
	TransferPct      int       `json:"transfer_pct"`
	ThroughputMedian float64   `json:"throughput_median_ops_per_s"`
	ThroughputRuns   []float64 `json:"throughput_runs_ops_per_s"`
	Transfers        uint64    `json:"transfers"`
	// XShardCommits/XShardAborts are summed participant-side counter
	// deltas: each committed cross-shard transaction counts once per
	// participant shard (2 for a transfer), each aborted prepare round
	// likewise.
	XShardCommits    uint64  `json:"xshard_commits"`
	XShardAborts     uint64  `json:"xshard_aborts"`
	XShardAbortRatio float64 `json:"xshard_abort_ratio"`
}

// XShardBenchReport is the transfer-mix sweep, written to
// BENCH_xshard.json.
type XShardBenchReport struct {
	Description string            `json:"description"`
	Config      XShardBenchConfig `json:"config"`
	// Baseline and Check are two interleaved series at transfer-pct 0 —
	// identical pure single-shard load with the cross-shard machinery
	// compiled in and idle. Their ratio is the regression gate: the
	// coordinator, the MultiGroup fence and the prepared-commit split must
	// cost the plain path nothing.
	Baseline XShardPoint `json:"baseline"`
	Check    XShardPoint `json:"check"`
	// BaselineRatio = min/max of the two pct-0 medians (1.0 = identical).
	BaselineRatio         float64       `json:"baseline_ratio"`
	SingleShardWithin3Pct bool          `json:"single_shard_within_3pct"`
	Points                []XShardPoint `json:"points"`
	// BalanceConserved reports the post-sweep conservation check: after
	// a final pure-transfer run, the keyspace's signed total is unchanged
	// (every transfer committed on both shards or neither).
	BalanceConserved bool `json:"balance_conserved"`
}

// xshardAcc accumulates one point's runs.
type xshardAcc struct {
	pct     int
	tputs   []float64
	xfers   uint64
	commits uint64
	aborts  uint64
}

func (a *xshardAcc) finish() XShardPoint {
	pt := XShardPoint{
		TransferPct:      a.pct,
		ThroughputMedian: median(a.tputs),
		ThroughputRuns:   a.tputs,
		Transfers:        a.xfers,
		XShardCommits:    a.commits,
		XShardAborts:     a.aborts,
	}
	if pt.XShardCommits > 0 {
		pt.XShardAbortRatio = float64(pt.XShardAborts) / float64(pt.XShardCommits)
	}
	return pt
}

// BenchXShard sweeps the transfer mix 0→max against one in-process
// sharded server, measuring aggregate throughput and the cross-shard
// commit/abort counters. Rounds interleave every point (including the two
// pct-0 regression series) so all samples share the machine-noise
// windows; the server stays unguided throughout so mode churn cannot
// alias into the curves.
func BenchXShard(cfg XShardBenchConfig) (XShardBenchReport, error) {
	cfg = cfg.normalize()
	rep := XShardBenchReport{
		Description: "Cross-shard transfer sweep: aggregate throughput vs the share of ops that are two-key cross-shard transfers (single OpTxn, zero-sum), on pipelined fixed-work unguided load. Two interleaved transfer-free series gate the single-shard path (within 3%); the sweep points carry participant-side cross-shard commit/abort counter deltas; a final pure-transfer run checks balance conservation.",
		Config:      cfg,
	}

	srv := New(Config{
		Shards:   cfg.Shards,
		Workers:  cfg.Workers,
		Batch:    cfg.Batch,
		Buckets:  2 * cfg.Keys,
		Unguided: true,
	})
	if err := srv.Start(); err != nil {
		return rep, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}()

	xshard := func() (c, a uint64) {
		for sh := 0; sh < cfg.Shards; sh++ {
			m := srv.Router().System(sh).Telemetry()
			c += m.XShardCommits.Load()
			a += m.XShardAborts.Load()
		}
		return
	}

	load := LoadConfig{
		Addr:       srv.Addr().String(),
		Conns:      cfg.Conns,
		Window:     cfg.Window,
		OpsPerConn: cfg.OpsPerConn,
		Keys:       cfg.Keys,
		Skew:       cfg.Skew,
		GetPct:     -1, // defeat normalize()'s default mix: residual ops are 100% Add
		Shards:     cfg.Shards,
		Seed:       0xC0FFEE,
	}

	// Populate the keyspace and fault in both execution paths (batched
	// single-op and coordinator) before anything is measured.
	prime := load
	prime.TransferPct = 20
	if _, err := RunLoad(prime); err != nil {
		return rep, fmt.Errorf("prime run: %w", err)
	}

	accs := []*xshardAcc{{pct: 0}, {pct: 0}} // baseline, check
	for _, pct := range cfg.TransferPcts {
		accs = append(accs, &xshardAcc{pct: pct})
	}
	for r := 0; r < cfg.Runs; r++ {
		// Unmeasured quarter-length warmup keeps each round's measured
		// samples out of the scheduler's cold start (same idiom as the
		// shard sweep).
		warm := load
		warm.OpsPerConn = cfg.OpsPerConn / 4
		warm.Seed = load.Seed + uint64(500+r)
		if _, err := RunLoad(warm); err != nil {
			return rep, fmt.Errorf("warmup round %d: %w", r, err)
		}
		for i, acc := range accs {
			lc := load
			lc.TransferPct = acc.pct
			lc.Seed = load.Seed + uint64(1000*r+i)
			c0, a0 := xshard()
			st, err := RunLoad(lc)
			if err != nil {
				return rep, fmt.Errorf("transfer-pct %d run %d: %w", acc.pct, r, err)
			}
			c1, a1 := xshard()
			acc.tputs = append(acc.tputs, st.Throughput)
			acc.xfers += st.Transfers
			acc.commits += c1 - c0
			acc.aborts += a1 - a0
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "round %d transfer-pct %2d: %8.0f ops/s (%d transfers, xshard commits +%d aborts +%d)\n",
					r, acc.pct, st.Throughput, st.Transfers, c1-c0, a1-a0)
			}
		}
	}

	rep.Baseline = accs[0].finish()
	rep.Check = accs[1].finish()
	for _, acc := range accs[2:] {
		rep.Points = append(rep.Points, acc.finish())
	}
	lo, hi := rep.Baseline.ThroughputMedian, rep.Check.ThroughputMedian
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 0 {
		rep.BaselineRatio = lo / hi
	}
	rep.SingleShardWithin3Pct = rep.BaselineRatio >= 0.97

	// Conservation: snapshot the signed total, push a pure-transfer run
	// (TransferPct 100 — the residual mix is never drawn, so nothing but
	// zero-sum transfers mutates the keyspace), re-sum. The total must not
	// move.
	before, err := VerifyBalance(load.Addr, cfg.Keys)
	if err != nil {
		return rep, err
	}
	pure := load
	pure.TransferPct = 100
	pure.Seed = load.Seed + 1
	if _, err := RunLoad(pure); err != nil {
		return rep, fmt.Errorf("pure-transfer run: %w", err)
	}
	after, err := VerifyBalance(load.Addr, cfg.Keys)
	if err != nil {
		return rep, err
	}
	rep.BalanceConserved = before == after
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "balance before %d after %d conserved=%v; pct-0 ratio %.4f\n",
			before, after, rep.BalanceConserved, rep.BaselineRatio)
	}
	return rep, nil
}
