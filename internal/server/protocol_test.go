package server

import (
	"errors"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, ID: 1, Key: 42},
		{Op: OpPut, ID: 0xFFFFFFFF, Key: 0xFFFFFFFFFFFFFFFF, Arg: 7},
		{Op: OpAdd, ID: 7, Key: 0, Arg: 0x8000000000000000},
		{Op: OpDel, ID: 1 << 30, Key: 1 << 60},
		{Op: OpCtl, ID: 3, Key: uint64(CtlModeAuto), Arg: 512},
		{Op: OpInfo, ID: 9, Key: uint64(InfoMode)},
	}
	for _, want := range cases {
		buf := AppendRequest(nil, want)
		if len(buf) != ReqFrameLen {
			t.Fatalf("frame length %d, want %d", len(buf), ReqFrameLen)
		}
		got, err := DecodeRequest(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Status: StatusOK, Value: 99},
		{ID: 0xFFFFFFFF, Status: StatusNotFound},
		{ID: 5, Status: StatusShutdown, Value: 0xFFFFFFFFFFFFFFFF},
	}
	for _, want := range cases {
		buf := AppendResponse(nil, want)
		if len(buf) != RespFrameLen {
			t.Fatalf("frame length %d, want %d", len(buf), RespFrameLen)
		}
		got, err := DecodeResponse(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	if _, err := DecodeRequest(make([]byte, reqPayloadLen-1)); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short payload: got %v, want ErrShortFrame", err)
	}
	bad := AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 2})
	bad[4] = 0 // op byte below the valid range
	if _, err := DecodeRequest(bad[4:]); !errors.Is(err, ErrBadOp) {
		t.Fatalf("op 0: got %v, want ErrBadOp", err)
	}
	bad[4] = byte(OpWaitKey) + 1
	if _, err := DecodeRequest(bad[4:]); !errors.Is(err, ErrBadOp) {
		t.Fatalf("op out of range: got %v, want ErrBadOp", err)
	}
	if _, err := DecodeResponse(make([]byte, respPayloadLen-1)); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short response: got %v, want ErrShortFrame", err)
	}
}

// TestDecodeRequestZeroAlloc is the allocation gate run by CI's bench-smoke
// job: the per-request decode path must stay allocation-free.
func TestDecodeRequestZeroAlloc(t *testing.T) {
	buf := AppendRequest(nil, Request{Op: OpAdd, ID: 77, Key: 123456, Arg: 1})
	payload := buf[4:]
	allocs := testing.AllocsPerRun(1000, func() {
		req, err := DecodeRequest(payload)
		if err != nil || req.ID != 77 {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeRequest allocates %.1f times per op, want 0", allocs)
	}
}

func TestAppendResponseZeroAllocWithCapacity(t *testing.T) {
	buf := make([]byte, 0, RespFrameLen)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendResponse(buf[:0], Response{ID: 1, Status: StatusOK, Value: 2})
	})
	if allocs != 0 {
		t.Fatalf("AppendResponse into sized buffer allocates %.1f times per op, want 0", allocs)
	}
}
