package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gstm"
	"gstm/internal/obs"
	"gstm/internal/shard"
	"gstm/internal/stmds"
	"gstm/internal/telemetry"
	"gstm/internal/wal"
)

// Config parameterizes a Server. The zero value is not usable; call
// (Config).normalize via New, which fills defaults.
type Config struct {
	// Addr is the TCP listen address; ":0" picks a free port (see
	// Server.Addr for the bound one).
	Addr string

	// Shards is the number of independent STM Systems the keyspace is
	// hash-partitioned across (default 1). Each shard runs its own TL2
	// runtime with a private version clock, its own store partition, its
	// own guidance lifecycle and its own telemetry label ("shard<i>"), so
	// one shard's conflicts, clock traffic or rejected model never touch a
	// neighbor.
	Shards int

	// Workers sizes the execution pool. Worker i runs every one of its
	// transactions as gstm.ThreadID(i) — on whichever shard a key routes
	// to — so each shard's profiled Thread State Automaton keeps the
	// paper's thread identity over live traffic.
	Workers int

	// Batch is the maximum number of queued same-site, disjoint-key
	// operations coalesced into one transaction (default 8; 1 disables
	// batching). A batch spanning several shards executes as one
	// transaction per shard (see DESIGN.md "Sharding").
	Batch int

	// Buckets sizes the hash table across all shards (default 4096); each
	// shard's partition gets Buckets/Shards of them.
	Buckets int

	// QueueDepth is the per-worker request queue depth (default 256).
	// Full queues apply backpressure to connection readers.
	QueueDepth int

	// ProfileOps is how many committed operations one profiling slice
	// spans (default 2048); ProfileSlices is how many sliced traces are
	// collected before the model is trained (default 4). Together they are
	// the serving analogue of the paper's repeated profiling runs. Each
	// shard counts its own operations and walks the lifecycle at its own
	// pace.
	ProfileOps    int
	ProfileSlices int

	// MaxAttempts bounds attempts per batch transaction; exhaustion maps
	// to StatusBudget on every operation of that shard's sub-batch. 0 =
	// unlimited.
	MaxAttempts int

	// ForceGuidance installs the trained model even when the analyzer
	// rejects it (experiments and tests); otherwise rejection latches
	// ModeRejected on that shard and it keeps serving unguided.
	ForceGuidance bool

	// Tfactor and GateRetries tune guidance (zero = defaults); Watchdog,
	// when non-nil, arms the guidance watchdog on every hot-swapped gate.
	Tfactor     float64
	GateRetries int
	Watchdog    *gstm.WatchdogOptions

	// Unguided starts the server with every shard's lifecycle parked in
	// ModeUnguided instead of profiling toward guidance (CtlModeAuto can
	// still start it later).
	Unguided bool

	// Interleave is forwarded to gstm.Config (test machines).
	Interleave int

	// LockStripes is forwarded to every shard's gstm.Config: positive
	// selects the striped lock-table engine mode (versioned write-locks
	// live in a fixed cache-line-padded table per shard instead of one
	// word per location). Zero keeps per-location locks.
	LockStripes int

	// WALDir, when non-empty, turns durability on: each shard keeps a
	// write-ahead log of its commit sequence under WALDir/shard<i>, Start
	// recovers snapshot+log before serving, and mutating operations are
	// acknowledged only after their record reaches the log (see
	// internal/wal). Empty keeps the server purely in-memory.
	WALDir string

	// FsyncInterval selects the WAL durability mode: zero fsyncs every
	// group-committed batch before acking (strict — acked writes survive
	// power loss); positive acks on write to the page cache and fsyncs at
	// most once per interval (relaxed — acked writes survive process
	// kills; the loss window on OS failure is the interval).
	FsyncInterval time.Duration

	// SnapshotEvery triggers a WAL snapshot+truncate cycle after that many
	// logged commits per shard (0 disables automatic snapshots).
	SnapshotEvery int

	// GuidedWarmup also logs abort events and, on recovery, pre-trains
	// each shard's model from the replayed Tseq so the shard restarts
	// guided instead of re-profiling from cold.
	GuidedWarmup bool

	// DiskFaults, when non-nil, is installed as every shard WAL's disk
	// fault hook (chaos tests).
	DiskFaults wal.DiskFaults

	// TraceSampleEvery is the variance observatory's retention sampling
	// rate: every Nth finished span is kept in its worker's ring (0 =
	// obs.DefaultSampleEvery; 1 keeps every span — tests). Aggregation and
	// the K-slowest tail reservoir see every span regardless.
	TraceSampleEvery int
}

func (cfg Config) normalize() Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 4096
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.ProfileOps <= 0 {
		cfg.ProfileOps = 2048
	}
	if cfg.ProfileSlices <= 0 {
		cfg.ProfileSlices = 4
	}
	return cfg
}

// Server is a network-facing transactional KV store on the guided STM,
// hash-partitioned across cfg.Shards independent Systems.
type Server struct {
	cfg    Config
	router *shard.Router
	stores []*stmds.HashTable[uint64] // stores[s]: shard s's partition
	lcs    []*lifecycle               // lcs[s]: shard s's guidance lifecycle
	ln     net.Listener

	workers []*worker
	rr      atomic.Uint32 // round-robin dispatch cursor

	// coord executes OpTxn multi-key transactions on its own thread and
	// queue (see coordinator.go).
	coord *coordinator

	// wals[s] is shard s's write-ahead log (nil slice when durability is
	// off); warmed[s] records that recovery already installed a guided
	// model on shard s, so Start leaves its lifecycle alone.
	wals   []*wal.Log
	warmed []bool

	// acks hands committed durable batches to the acker goroutine, which
	// waits out their WAL obligations and writes the responses (see
	// acker.go). Nil when durability is off.
	acks    chan *ackItem
	ackDone chan struct{}
	ackOnce sync.Once
	ackPool sync.Pool

	// inflight tracks accepted data operations from enqueue to response
	// write; Shutdown drains it.
	inflight sync.WaitGroup
	draining atomic.Bool
	stop     chan struct{} // closed after drain: workers exit
	stopOnce sync.Once
	wg       sync.WaitGroup

	// watchCtx is the park context of every blocking watch transaction
	// (OpWatch/OpWaitKey long-polls). watchCancel fires at the start of
	// Shutdown and Crash — before inflight.Wait — so parked watches wake,
	// answer StatusShutdown, and release their inflight slots; without it a
	// drain would wait forever on a watch whose key never changes.
	watchCtx    context.Context
	watchCancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// liveKeys approximates the store's cardinality from acknowledged
	// creates minus deletes (exact under this protocol: every mutation is
	// acked exactly once).
	liveKeys   atomic.Int64
	batches    atomic.Uint64
	batchedOps atomic.Uint64

	// obs is the variance observatory: every batch sub-transaction records
	// a span (decode, queue wait, attempts with abort causes, commit
	// phases, WAL ack wait) into it. Always on; retention is sampled.
	obs *obs.Observatory

	// unregGauges unhooks the telemetry gauges Start registered (WAL queue
	// depth per shard, acker backlog); dropped once by dropGauges.
	unregGauges []func()
	gaugeOnce   sync.Once
}

// New builds a Server (not yet listening) with cfg.Shards independent
// gstm.Systems, each sized to cfg.Workers threads.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg: cfg,
		router: shard.New(shard.Config{
			Shards:      cfg.Shards,
			Threads:     cfg.Workers,
			Interleave:  cfg.Interleave,
			LockStripes: cfg.LockStripes,
		}),
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
		obs: obs.New(obs.Config{
			Shards: cfg.Shards,
			// Three rings beyond the worker pool: the txn coordinator
			// (Workers), the WAL scan thread (Workers+1) and the watch
			// thread (Workers+2), so their spans land in their own rings
			// instead of clamping into worker 0's.
			Workers:     cfg.Workers + 3,
			SampleEvery: cfg.TraceSampleEvery,
		}),
	}
	s.watchCtx, s.watchCancel = context.WithCancel(context.Background())
	if cfg.WALDir != "" {
		s.acks = make(chan *ackItem, 8*cfg.Workers)
		s.ackDone = make(chan struct{})
		// The acker lives from New to stopAcker, outside s.wg: it outlives
		// the workers (its producers) and must drain after they exit even
		// when Start itself fails.
		go pprof.Do(context.Background(), pprof.Labels("gstm", "server-acker"),
			func(context.Context) { s.ackLoop() })
	}
	buckets := cfg.Buckets / cfg.Shards
	if buckets < 16 {
		buckets = 16
	}
	for i := 0; i < cfg.Shards; i++ {
		s.stores = append(s.stores, stmds.NewHashTable[uint64](buckets))
		lc := &lifecycle{}
		lc.init(s.router.System(i), &s.cfg)
		s.lcs = append(s.lcs, lc)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, newWorker(s, i))
	}
	s.coord = newCoordinator(s)
	return s
}

// Router exposes the shard router (per-shard Systems, key homing) to the
// embedding command and tests.
func (s *Server) Router() *shard.Router { return s.router }

// System exposes shard 0's STM system — the whole system when the server
// is unsharded. Multi-shard callers should walk Router().
func (s *Server) System() *gstm.System { return s.router.System(0) }

// Shards returns the shard count.
func (s *Server) Shards() int { return s.router.Shards() }

// Observatory exposes the server's variance observatory; mount its Handler
// (or gstm.TraceHandler) as /debug/trace on the telemetry endpoint.
func (s *Server) Observatory() *obs.Observatory { return s.obs }

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Start opens durability (when configured) and recovers each shard from
// its write-ahead log, binds the listener, launches the worker pool and
// the accept loop, and starts every shard's guidance lifecycle
// (profiling, unless cfg.Unguided; shards guided-warmed by recovery keep
// their recovered model).
func (s *Server) Start() error {
	if s.cfg.WALDir != "" && s.wals == nil {
		if err := s.openDurability(); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.closeWALs()
		return err
	}
	s.ln = ln
	for i, lc := range s.lcs {
		if s.warmed != nil && s.warmed[i] {
			continue // recovery already installed a guided model
		}
		if s.cfg.Unguided {
			lc.forceUnguided()
		} else {
			lc.startAuto(s.cfg.ProfileOps)
		}
	}
	s.registerGauges()
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("gstm", "server-worker", "worker", strconv.Itoa(int(w.id))),
				func(context.Context) { w.loop() })
		}(w)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		pprof.Do(context.Background(), pprof.Labels("gstm", "server-coordinator"),
			func(context.Context) { s.coord.loop() })
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		pprof.Do(context.Background(), pprof.Labels("gstm", "server-accept"),
			func(context.Context) { s.acceptLoop() })
	}()
	return nil
}

// registerGauges hooks the server's point-in-time depths into the
// process-wide telemetry registry: each shard WAL's unflushed queue depth
// and the acker's backlog of durable batches awaiting their flush. They
// appear on /metrics until dropGauges (Shutdown/Crash) unhooks them.
func (s *Server) registerGauges() {
	label := func(i int) string {
		if s.cfg.Shards > 1 {
			return "shard" + strconv.Itoa(i)
		}
		return "shard"
	}
	for i, l := range s.wals {
		if l == nil {
			continue
		}
		l := l
		s.unregGauges = append(s.unregGauges, telemetry.RegisterGauge(
			"gstm_wal_queue_depth", label(i),
			func() float64 { return float64(l.QueueDepth()) }))
	}
	if s.acks != nil {
		s.unregGauges = append(s.unregGauges, telemetry.RegisterGauge(
			"gstm_acker_backlog", "server",
			func() float64 { return float64(len(s.acks)) }))
	}
}

// dropGauges unhooks everything registerGauges registered; idempotent, so
// both Shutdown and Crash can call it.
func (s *Server) dropGauges() {
	s.gaugeOnce.Do(func() {
		for _, u := range s.unregGauges {
			u()
		}
		s.unregGauges = nil
	})
}

func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			_ = nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() { defer s.wg.Done(); s.serveConn(nc) }()
	}
}

// conn wraps a client connection with a write lock so workers and the
// reader can interleave response frames safely.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex
}

func (c *conn) writeFrames(buf []byte) {
	c.wmu.Lock()
	_, _ = c.nc.Write(buf) // write errors surface as reader EOF/close
	c.wmu.Unlock()
}

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{nc: nc}
	defer func() {
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
		_ = nc.Close()
	}()

	br := bufio.NewReaderSize(nc, 64*ReqFrameLen)
	var hdr [4]byte
	var payload [MaxFrame]byte
	var respBuf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF or forced close
		}
		// The span's decode phase starts here: the frame header has
		// arrived, so everything until dispatch is the server's own work
		// (payload read off the bufio buffer, decode, routing).
		dec0 := time.Now()
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if n == 0 || n > MaxFrame {
			return // stream out of sync: drop the connection
		}
		if _, err := io.ReadFull(br, payload[:n]); err != nil {
			return
		}
		if Op(payload[0]&^TraceBit) == OpTxn {
			// The protocol's only variable-length request: decode the
			// header + sub-ops and queue it for the txn coordinator. The
			// sub-op slice is freshly allocated per transaction — it must
			// outlive this reusable payload buffer.
			req, ops, err := DecodeTxnRequest(payload[:n], nil)
			if err != nil {
				return // undecodable: cannot trust framing anymore
			}
			s.inflight.Add(1)
			if s.draining.Load() {
				s.inflight.Done()
				respBuf = AppendResponse(respBuf[:0], Response{ID: req.ID, Status: StatusShutdown})
				c.writeFrames(respBuf)
				continue
			}
			enq := time.Now()
			select {
			case s.coord.queue <- txnTask{req: req, ops: ops, c: c, enq: enq.UnixNano(), decNs: enq.Sub(dec0).Nanoseconds()}:
			case <-s.stop:
				s.inflight.Done()
				return
			}
			continue
		}
		req, err := DecodeRequest(payload[:n])
		if err != nil {
			return // undecodable: cannot trust framing anymore
		}

		switch req.Op {
		case OpCtl, OpInfo:
			respBuf = AppendResponse(respBuf[:0], s.handleControl(req))
			c.writeFrames(respBuf)
		case OpWatch, OpWaitKey:
			// Long-polls bypass the worker queue: each gets its own
			// goroutine that parks inside a blocking transaction, so a
			// thousand idle watches occupy zero workers. A watch arriving
			// mid-drain is refused before it can park.
			s.inflight.Add(1)
			if s.draining.Load() {
				s.inflight.Done()
				respBuf = AppendResponse(respBuf[:0], Response{ID: req.ID, Status: StatusWouldBlock})
				c.writeFrames(respBuf)
				continue
			}
			s.wg.Add(1)
			go func(req Request) {
				defer s.wg.Done()
				s.serveWatch(req, c)
			}(req)
		default:
			s.inflight.Add(1)
			if s.draining.Load() {
				s.inflight.Done()
				respBuf = AppendResponse(respBuf[:0], Response{ID: req.ID, Status: StatusShutdown})
				c.writeFrames(respBuf)
				continue
			}
			w := s.workers[int(s.rr.Add(1))%len(s.workers)]
			enq := time.Now()
			select {
			case w.queue <- task{req: req, c: c, enq: enq.UnixNano(), decNs: enq.Sub(dec0).Nanoseconds()}:
			case <-s.stop:
				s.inflight.Done()
				return
			}
		}
	}
}

// handleControl serves the non-transactional control plane. Mode commands
// fan out to every shard's lifecycle; per-shard selectors take the shard
// index in Arg.
func (s *Server) handleControl(req Request) Response {
	resp := Response{ID: req.ID}
	switch req.Op {
	case OpCtl:
		switch CtlCommand(req.Key) {
		case CtlModeUnguided:
			for _, lc := range s.lcs {
				lc.forceUnguided()
			}
		case CtlModeAuto:
			ops := int(req.Arg)
			if ops <= 0 {
				ops = s.cfg.ProfileOps
			}
			for _, lc := range s.lcs {
				lc.startAuto(ops)
			}
		case CtlModeGuided:
			any := false
			for _, lc := range s.lcs {
				if lc.reinstallGuided() {
					any = true
				}
			}
			if !any {
				resp.Status = StatusUnguidable
			}
		case CtlShardReject:
			sh := int(req.Arg)
			if sh < 0 || sh >= len(s.lcs) {
				resp.Status = StatusBadRequest
				break
			}
			s.lcs[sh].forceReject("forced by CtlShardReject")
		case CtlReset:
			s.router.ResetStats()
			s.batches.Store(0)
			s.batchedOps.Store(0)
		default:
			resp.Status = StatusBadRequest
		}
	case OpInfo:
		switch InfoSelector(req.Key) {
		case InfoCommits:
			c, _ := s.router.Stats()
			resp.Value = c
		case InfoAborts:
			_, a := s.router.Stats()
			resp.Value = a
		case InfoMode:
			resp.Value = uint64(s.Mode())
		case InfoBatches:
			resp.Value = s.batches.Load()
		case InfoBatchedOps:
			resp.Value = s.batchedOps.Load()
		case InfoKeys:
			resp.Value = uint64(s.liveKeys.Load())
		case InfoShards:
			resp.Value = uint64(s.Shards())
		case InfoShardMode:
			sh := int(req.Arg)
			if sh < 0 || sh >= len(s.lcs) {
				resp.Status = StatusBadRequest
				break
			}
			resp.Value = uint64(s.ShardMode(sh))
		case InfoShardCommits:
			sh := int(req.Arg)
			if sh < 0 || sh >= len(s.lcs) {
				resp.Status = StatusBadRequest
				break
			}
			c, _ := s.router.System(sh).Stats()
			resp.Value = c
		case InfoShardAborts:
			sh := int(req.Arg)
			if sh < 0 || sh >= len(s.lcs) {
				resp.Status = StatusBadRequest
				break
			}
			_, a := s.router.System(sh).Stats()
			resp.Value = a
		default:
			resp.Status = StatusBadRequest
		}
	}
	return resp
}

// ShardMode reports shard sh's serving mode, refining ModeGuided to
// ModeDegraded while that shard's watchdog holds guidance tripped.
func (s *Server) ShardMode(sh int) ServingMode {
	m := s.lcs[sh].currentMode()
	if m == ModeGuided && s.router.System(sh).Health().Degraded() {
		return ModeDegraded
	}
	return m
}

// Mode reports the aggregate serving mode. With one shard it is exactly
// that shard's mode. Across shards — which walk their lifecycles
// independently — the most transitional state wins: any shard still
// profiling or training makes the aggregate ModeProfiling/ModeTraining;
// otherwise a degraded shard reports ModeDegraded, any guided shard
// reports ModeGuided (a rejected neighbor keeps serving unguided without
// demoting the aggregate), then ModeRejected, then ModeUnguided.
func (s *Server) Mode() ServingMode {
	var seen [6]bool
	for sh := range s.lcs {
		m := s.ShardMode(sh)
		if int(m) < len(seen) {
			seen[m] = true
		}
	}
	for _, m := range [...]ServingMode{ModeProfiling, ModeTraining, ModeDegraded, ModeGuided, ModeRejected} {
		if seen[m] {
			return m
		}
	}
	return ModeUnguided
}

// RejectReason returns the first shard's analyzer reason when a lifecycle
// latched ModeRejected ("" when none did).
func (s *Server) RejectReason() string {
	for _, lc := range s.lcs {
		if r := lc.rejectReason(); r != "" {
			return r
		}
	}
	return ""
}

// Shutdown drains the server: the listener closes immediately, queued and
// in-flight operations finish and their responses are written, then the
// workers stop and every connection is closed. New data operations
// arriving mid-drain are answered with StatusShutdown. ctx bounds the
// drain; on expiry remaining work is abandoned and ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Wake every parked watch before waiting on inflight: a long-poll whose
	// key never changes would otherwise hold the drain open forever.
	s.watchCancel()
	s.dropGauges()
	_ = s.ln.Close()

	drained := make(chan struct{})
	go func() { s.inflight.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.stopOnce.Do(func() { close(s.stop) })
	s.connMu.Lock()
	for nc := range s.conns {
		_ = nc.Close()
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		// Workers have exited (no new records, no new ack items) and the
		// drain above already saw every pending ack written, so the acker
		// stops immediately; then Close drains and fsyncs everything
		// staged, which is the clean-shutdown guarantee — every acked
		// record is on disk before the process exits.
		s.stopAcker()
		return errors.Join(err, s.closeWALs())
	case <-ctx.Done():
		// Abandoning the drain: workers may still be live, so the acks
		// channel cannot be closed safely; the acker is left to die with
		// the process. Closing the WALs releases anything it still waits on.
		return errors.Join(err, s.closeWALs(), fmt.Errorf("server: shutdown wait: %w", ctx.Err()))
	}
}

// closeWALs flushes and closes every shard's log (nil-safe, idempotent).
func (s *Server) closeWALs() error {
	var err error
	for _, l := range s.wals {
		if l != nil {
			err = errors.Join(err, l.Close())
		}
	}
	return err
}

// Close force-stops the server without draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
	return nil
}

// Crash force-stops the server the way SIGKILL would, for in-process
// kill-and-recover chaos tests: no drain, no final WAL fsync. Queued and
// in-flight operations are abandoned; each shard's log keeps exactly what
// was already written — which covers every acked record — and loses its
// staged buffer. The store's in-memory state is discarded with the Server.
func (s *Server) Crash() {
	s.draining.Store(true)
	s.watchCancel() // parked watch goroutines must exit before wg.Wait
	s.dropGauges()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	// Crash the logs before waiting: the acker's pending WaitAcked calls
	// must be released (with ErrCrashed) so it keeps draining and no
	// worker stays blocked handing a batch off.
	for _, l := range s.wals {
		if l != nil {
			l.Crash()
		}
	}
	s.connMu.Lock()
	for nc := range s.conns {
		_ = nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	s.stopAcker()
}
