package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gstm/internal/xrand"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestServerSequentialOracle hammers one server from concurrent clients and
// checks the committed state against a sequential model: shared keys take
// only commutative Adds (final value = sum of acknowledged deltas), and
// each client owns a private key it mutates with Put/Add/Del, tracked
// exactly by a local oracle.
func TestServerSequentialOracle(t *testing.T) {
	s := startServer(t, Config{Workers: 4, Batch: 8, Unguided: true})
	addr := s.Addr().String()

	const (
		clients   = 8
		opsPer    = 400
		sharedLen = 4
	)
	type oracle struct {
		present bool
		val     uint64
		shared  [sharedLen]uint64 // this client's contribution to each shared key
	}
	oracles := make([]oracle, clients)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			o := &oracles[ci]
			priv := uint64(1000 + ci) // disjoint per client
			r := xrand.NewThread(7, ci)
			for i := 0; i < opsPer; i++ {
				switch r.Intn(4) {
				case 0: // shared commutative add
					k := uint64(r.Intn(sharedLen))
					d := uint64(r.Intn(10) + 1)
					if _, err := cl.Add(k, int64(d)); err != nil {
						errc <- err
						return
					}
					o.shared[k] += d
				case 1: // private put
					v := r.Uint64() >> 1
					existed, err := cl.Put(priv, v)
					if err != nil {
						errc <- err
						return
					}
					if existed != o.present {
						errc <- fmt.Errorf("client %d: put existed=%v, oracle %v", ci, existed, o.present)
						return
					}
					o.present, o.val = true, v
				case 2: // private add
					nv, err := cl.Add(priv, 3)
					if err != nil {
						errc <- err
						return
					}
					var want uint64
					if o.present {
						want = o.val + 3
					} else {
						want = 3
					}
					if nv != want {
						errc <- fmt.Errorf("client %d: add got %d, oracle %d", ci, nv, want)
						return
					}
					o.present, o.val = true, want
				default: // private del
					removed, err := cl.Del(priv)
					if err != nil {
						errc <- err
						return
					}
					if removed != o.present {
						errc <- fmt.Errorf("client %d: del removed=%v, oracle %v", ci, removed, o.present)
						return
					}
					o.present, o.val = false, 0
				}
				// Private reads must always agree with the oracle mid-run:
				// no other client touches priv.
				if i%16 == 0 {
					v, ok, err := cl.Get(priv)
					if err != nil {
						errc <- err
						return
					}
					if ok != o.present || (ok && v != o.val) {
						errc <- fmt.Errorf("client %d: get (%d,%v), oracle (%d,%v)", ci, v, ok, o.val, o.present)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiesced: check shared keys against the summed oracle and the live
	// key gauge against the surviving keys.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	liveWant := uint64(sharedLen)
	for k := 0; k < sharedLen; k++ {
		var want uint64
		for ci := range oracles {
			want += oracles[ci].shared[k]
		}
		got, ok, err := cl.Get(uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != want {
			t.Fatalf("shared key %d: got (%d,%v), want %d", k, got, ok, want)
		}
	}
	for ci := range oracles {
		o := &oracles[ci]
		got, ok, err := cl.Get(uint64(1000 + ci))
		if err != nil {
			t.Fatal(err)
		}
		if ok != o.present || (ok && got != o.val) {
			t.Fatalf("private key %d: got (%d,%v), oracle (%d,%v)", ci, got, ok, o.val, o.present)
		}
		if o.present {
			liveWant++
		}
	}
	if keys, err := cl.Info(InfoKeys); err != nil || keys != liveWant {
		t.Fatalf("InfoKeys = %d (err %v), want %d", keys, err, liveWant)
	}
	commits, err := cl.Info(InfoCommits)
	if err != nil || commits == 0 {
		t.Fatalf("InfoCommits = %d (err %v), want > 0", commits, err)
	}
}

// TestServerGuideFlipUnderLoad drives live traffic through the full
// lifecycle — profiling slices, background training, hot-swap into guided
// mode — while clients keep mutating, then re-checks correctness on the
// far side of the flip.
func TestServerGuideFlipUnderLoad(t *testing.T) {
	s := startServer(t, Config{
		Workers:       2,
		Batch:         4,
		ProfileOps:    64,
		ProfileSlices: 2,
		ForceGuidance: true, // tiny traces may not pass the analyzer; the flip is what's under test
	})
	addr := s.Addr().String()
	if got := s.Mode(); got != ModeProfiling {
		t.Fatalf("mode at start = %v, want profiling", got)
	}

	const clients = 4
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	totals := make([]uint64, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			r := xrand.NewThread(11, ci)
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				if _, err := cl.Add(uint64(r.Intn(8)), 1); err != nil {
					errc <- err
					return
				}
				totals[ci]++
			}
		}(ci)
	}

	ctl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		mode, err := ctl.Info(InfoMode)
		if err != nil {
			t.Fatal(err)
		}
		if ServingMode(mode) == ModeGuided || ServingMode(mode) == ModeDegraded {
			break
		}
		if time.Now().After(deadline) {
			close(stopLoad)
			wg.Wait()
			t.Fatalf("server never reached guided mode (stuck in %v)", ServingMode(mode))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s.System().Guided() {
		t.Fatal("Info reports guided but the system gate is not installed")
	}

	// Keep serving guided for a moment, then stop and check the sum.
	time.Sleep(50 * time.Millisecond)
	close(stopLoad)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var want uint64
	for _, n := range totals {
		want += n
	}
	var got uint64
	for k := 0; k < 8; k++ {
		if v, ok, err := ctl.Get(uint64(k)); err != nil {
			t.Fatal(err)
		} else if ok {
			got += v
		}
	}
	if got != want {
		t.Fatalf("sum across keys = %d, want %d acknowledged adds", got, want)
	}
}

// TestServerPipelinedBatching writes many disjoint-key requests into the
// socket before reading any response (the synchronous Client cannot), and
// checks that (a) responses come back complete and in order for the
// single-worker server, and (b) the worker actually coalesced multiple
// operations into single transactions.
func TestServerPipelinedBatching(t *testing.T) {
	s := startServer(t, Config{Workers: 1, Batch: 8, Unguided: true})
	addr := s.Addr().String()

	ctl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		const n = 256
		var buf []byte
		for i := 0; i < n; i++ {
			buf = AppendRequest(buf, Request{Op: OpAdd, ID: uint32(i + 1), Key: uint64(i), Arg: 1})
		}
		if _, err := nc.Write(buf); err != nil {
			t.Fatal(err)
		}
		frame := make([]byte, RespFrameLen)
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(nc, frame); err != nil {
				t.Fatalf("response %d: %v", i, err)
			}
			resp, err := DecodeResponse(frame[4:])
			if err != nil {
				t.Fatal(err)
			}
			if resp.ID != uint32(i+1) {
				t.Fatalf("single-worker pipeline reordered: response %d has id %d", i, resp.ID)
			}
			if resp.Status != StatusOK {
				t.Fatalf("response %d: status %d", i, resp.Status)
			}
		}
		_ = nc.Close()

		batches, err := ctl.Info(InfoBatches)
		if err != nil {
			t.Fatal(err)
		}
		ops, err := ctl.Info(InfoBatchedOps)
		if err != nil {
			t.Fatal(err)
		}
		if ops > batches {
			return // at least one transaction carried >1 operation
		}
		if time.Now().After(deadline) {
			t.Fatalf("no coalescing observed: %d batches for %d ops", batches, ops)
		}
	}
}

// TestServerControlPlane covers mode switching and error statuses on the
// non-transactional path.
func TestServerControlPlane(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if mode, err := cl.Info(InfoMode); err != nil || ServingMode(mode) != ModeUnguided {
		t.Fatalf("mode = %v (err %v), want unguided", ServingMode(mode), err)
	}
	if err := cl.Ctl(CtlModeAuto, 128); err != nil {
		t.Fatal(err)
	}
	if mode, err := cl.Info(InfoMode); err != nil || ServingMode(mode) != ModeProfiling {
		t.Fatalf("mode after auto = %v (err %v), want profiling", ServingMode(mode), err)
	}
	if err := cl.Ctl(CtlModeUnguided, 0); err != nil {
		t.Fatal(err)
	}
	if mode, err := cl.Info(InfoMode); err != nil || ServingMode(mode) != ModeUnguided {
		t.Fatalf("mode after unguided = %v (err %v), want unguided", ServingMode(mode), err)
	}

	if st, _, err := cl.Do(OpCtl, 99, 0); err != nil || st != StatusBadRequest {
		t.Fatalf("unknown ctl: status %d (err %v), want bad request", st, err)
	}
	if st, _, err := cl.Do(OpInfo, 99, 0); err != nil || st != StatusBadRequest {
		t.Fatalf("unknown info: status %d (err %v), want bad request", st, err)
	}

	// Counter reset zeroes the batch gauges.
	if _, err := cl.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ctl(CtlReset, 0); err != nil {
		t.Fatal(err)
	}
	if b, err := cl.Info(InfoBatches); err != nil || b != 0 {
		t.Fatalf("batches after reset = %d (err %v), want 0", b, err)
	}
}

// TestServerGracefulShutdown checks that Shutdown answers in-flight work,
// then refuses new connections.
func TestServerGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 2, Unguided: true})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Add(1, 5); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	// Idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
}

// TestServerMalformedFrameDropsConnection: a garbage length prefix must
// kill only that connection, not the server.
func TestServerMalformedFrameDropsConnection(t *testing.T) {
	s := startServer(t, Config{Workers: 1, Unguided: true})
	addr := s.Addr().String()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0}); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(one); err == nil {
		t.Fatal("connection survived a corrupt frame")
	}
	_ = nc.Close()

	// Server is still healthy.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Add(1, 1); err != nil {
		t.Fatal(err)
	}
}
