package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"gstm"
	"gstm/internal/wal"
)

// errWALUnavailable fails a shard sub-transaction before it commits when
// the shard's log is already dead: committing state whose durability can
// never be promised would make memory diverge from disk. It wraps
// wal.ErrFailed so the status mapping treats both identically.
var errWALUnavailable = fmt.Errorf("server: %w", wal.ErrFailed)

// Recovery replay granularity: applying many records per STM transaction
// amortizes commit overhead; with no concurrent readers during recovery,
// batching cannot be observed — only the final state matters.
const (
	replaySnapBatch = 512
	replayRecBatch  = 128

	// warmupMinCommits is the smallest recovered Tseq worth training a
	// model from; below it the shard cold-starts through normal profiling.
	warmupMinCommits = 64

	// scanAttempts bounds the snapshot scan's retries: a full-table
	// read-only scan under write load can lose validation repeatedly, and
	// an unbounded scan would stall the flusher. A failed scan just skips
	// that snapshot cycle.
	scanAttempts = 50
)

// openDurability opens each shard's write-ahead log, replays its
// recovery into the shard's store, advances the shard clock past the last
// durable commit, optionally pre-trains the shard's model from the
// replayed Tseq (guided warmup), and installs the log as the System's
// persistent event tap. Called from Start before workers exist, so replay
// runs with no concurrent transactions and no sink installed — replay
// commits are not re-logged.
func (s *Server) openDurability() error {
	s.wals = make([]*wal.Log, s.cfg.Shards)
	s.warmed = make([]bool, s.cfg.Shards)
	for sh := 0; sh < s.cfg.Shards; sh++ {
		sys := s.router.System(sh)
		l, rec, err := wal.Open(wal.Config{
			Dir: filepath.Join(s.cfg.WALDir, fmt.Sprintf("shard%d", sh)),
			// One stager per worker plus one for the cross-shard txn
			// coordinator (ThreadID Workers); the scan and watch threads
			// (Workers+1, Workers+2) stay outside the range, so their events
			// are ignored as before.
			Threads:       s.cfg.Workers + 1,
			FsyncInterval: s.cfg.FsyncInterval,
			SnapshotEvery: s.cfg.SnapshotEvery,
			LogAborts:     s.cfg.GuidedWarmup,
			Source:        &shardSource{srv: s, shard: sh},
			Faults:        s.cfg.DiskFaults,
			Metrics:       sys.Telemetry(),
		})
		if err != nil {
			err = fmt.Errorf("server: shard %d wal: %w", sh, err)
			return errors.Join(err, s.closeWALs())
		}
		s.wals[sh] = l
		if err := s.replayShard(sh, rec); err != nil {
			err = fmt.Errorf("server: shard %d recovery: %w", sh, err)
			return errors.Join(err, s.closeWALs())
		}
		if s.cfg.GuidedWarmup && !s.cfg.Unguided {
			if tr := rec.BuildTrace(); tr != nil && tr.Commits >= warmupMinCommits {
				m := gstm.BuildModel(s.cfg.Workers, []*gstm.Trace{tr})
				s.warmed[sh] = s.lcs[sh].warmStart(m)
			}
		}
		// Install the tap last: everything from here on is logged, and
		// every logged record's wv is above the recovered MaxWV.
		sys.SetTap(l)
	}
	return nil
}

// replayShard applies one shard's recovery — snapshot image first, then
// the salvaged commit records in wv order — to the shard's store, then
// advances the shard's version clock past the highest durable wv so new
// commits sort strictly after recovered ones, and recounts liveKeys from
// the recovered state.
func (s *Server) replayShard(sh int, rec *wal.Recovery) error {
	t0 := time.Now()
	sys := s.router.System(sh)
	st := s.stores[sh]
	ctx := context.Background()

	for lo := 0; lo < len(rec.SnapKeys); lo += replaySnapBatch {
		hi := lo + replaySnapBatch
		if hi > len(rec.SnapKeys) {
			hi = len(rec.SnapKeys)
		}
		err := sys.Run(ctx, 0, siteScan, func(tx *gstm.Tx) error {
			for i := lo; i < hi; i++ {
				k, v := int64(rec.SnapKeys[i]), rec.SnapVals[i]
				if !st.Set(tx, k, v) {
					st.InsertNoCount(tx, k, v)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	for lo := 0; lo < len(rec.Commits); lo += replayRecBatch {
		hi := lo + replayRecBatch
		if hi > len(rec.Commits) {
			hi = len(rec.Commits)
		}
		err := sys.Run(ctx, 0, siteScan, func(tx *gstm.Tx) error {
			for _, c := range rec.Commits[lo:hi] {
				for _, op := range c.Ops {
					k := int64(op.Key)
					switch {
					case op.Del:
						st.RemoveNoCount(tx, k)
					case !st.Set(tx, k, op.Val):
						st.InsertNoCount(tx, k, op.Val)
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	var live int64
	err := sys.Run(ctx, 0, siteScan, func(tx *gstm.Tx) error {
		live = 0
		st.RangeAll(tx, func(int64, uint64) bool { live++; return true })
		return nil
	}, gstm.WithReadOnly())
	if err != nil {
		return err
	}
	s.liveKeys.Add(live)

	sys.AdvanceClock(rec.MaxWV)
	m := sys.Telemetry()
	m.RecoveryReplayed.Add(0, uint64(rec.Replayed()))
	m.RecoveryNanos.Add(0, uint64(time.Since(t0).Nanoseconds()))
	return nil
}

// shardSource adapts one shard to wal.SnapshotSource. ClockNow reads the
// shard's version clock; Scan is a read-only STM full-table scan run on
// the dedicated scan thread — ThreadID(Workers+1), outside the WAL stager
// range, so its commit event never touches a staging slot and the log
// ignores it.
type shardSource struct {
	srv   *Server
	shard int

	// Scan scratch, reused across snapshot cycles. Only the flusher
	// goroutine calls Scan, so no synchronization is needed.
	keys, vals []uint64
}

func (ss *shardSource) ClockNow() uint64 { return ss.srv.router.System(ss.shard).Clock() }

func (ss *shardSource) Scan() (keys, vals []uint64, err error) {
	sys := ss.srv.router.System(ss.shard)
	st := ss.srv.stores[ss.shard]
	err = sys.Run(context.Background(), gstm.ThreadID(ss.srv.cfg.Workers+1), siteScan, func(tx *gstm.Tx) error {
		ss.keys, ss.vals = ss.keys[:0], ss.vals[:0]
		st.RangeAll(tx, func(k int64, v uint64) bool {
			ss.keys = append(ss.keys, uint64(k))
			ss.vals = append(ss.vals, v)
			return true
		})
		return nil
	}, gstm.WithReadOnly(), gstm.WithMaxAttempts(scanAttempts))
	if err != nil {
		return nil, nil, err
	}
	return ss.keys, ss.vals, nil
}

// WAL returns shard sh's write-ahead log (nil when durability is off) —
// for tests and the embedding command.
func (s *Server) WAL(sh int) *wal.Log {
	if s.wals == nil {
		return nil
	}
	return s.wals[sh]
}
