package server

import (
	"sync"
	"testing"
	"time"

	"gstm/internal/xrand"
)

// TestShardedServerOracle runs the sequential-oracle workload shape
// against a 4-shard server: shared keys take only commutative adds,
// private keys are tracked exactly, and the per-shard commit gauges must
// sum to the aggregate.
func TestShardedServerOracle(t *testing.T) {
	s := startServer(t, Config{Shards: 4, Workers: 4, Batch: 8, Unguided: true})
	addr := s.Addr().String()
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}

	const (
		clients   = 6
		opsPer    = 300
		sharedLen = 8
	)
	shared := make([][sharedLen]uint64, clients)
	type priv struct {
		present bool
		val     uint64
	}
	privs := make([]priv, clients)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			pk := uint64(5000 + ci)
			r := xrand.NewThread(23, ci)
			for i := 0; i < opsPer; i++ {
				switch r.Intn(3) {
				case 0:
					k := uint64(r.Intn(sharedLen))
					d := uint64(r.Intn(9) + 1)
					if _, err := cl.Add(k, int64(d)); err != nil {
						errc <- err
						return
					}
					shared[ci][k] += d
				case 1:
					v := r.Uint64() >> 1
					existed, err := cl.Put(pk, v)
					if err != nil {
						errc <- err
						return
					}
					if existed != privs[ci].present {
						errc <- errMismatch(ci, "put", existed, privs[ci].present)
						return
					}
					privs[ci] = priv{present: true, val: v}
				default:
					removed, err := cl.Del(pk)
					if err != nil {
						errc <- err
						return
					}
					if removed != privs[ci].present {
						errc <- errMismatch(ci, "del", removed, privs[ci].present)
						return
					}
					privs[ci] = priv{}
				}
			}
		}(ci)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for k := 0; k < sharedLen; k++ {
		var want uint64
		for ci := range shared {
			want += shared[ci][k]
		}
		got, ok, err := cl.Get(uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != want {
			t.Fatalf("shared key %d: got (%d,%v), want %d", k, got, ok, want)
		}
	}
	for ci := range privs {
		got, ok, err := cl.Get(uint64(5000 + ci))
		if err != nil {
			t.Fatal(err)
		}
		if ok != privs[ci].present || (ok && got != privs[ci].val) {
			t.Fatalf("private key %d: got (%d,%v), oracle %+v", ci, got, ok, privs[ci])
		}
	}

	// Per-shard gauges: every shard saw traffic (8 shared keys + privates
	// spread by hash), and the shard commit counters sum to the aggregate.
	if n, err := cl.Info(InfoShards); err != nil || n != 4 {
		t.Fatalf("InfoShards = %d (err %v), want 4", n, err)
	}
	total, err := cl.Info(InfoCommits)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for sh := uint64(0); sh < 4; sh++ {
		c, err := cl.InfoArg(InfoShardCommits, sh)
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			t.Fatalf("shard %d committed nothing", sh)
		}
		sum += c
	}
	if sum != total {
		t.Fatalf("shard commits sum %d != aggregate %d", sum, total)
	}
	if _, err := cl.InfoArg(InfoShardCommits, 4); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

func errMismatch(ci int, op string, got, want bool) error {
	return &mismatchError{ci: ci, op: op, got: got, want: want}
}

type mismatchError struct {
	ci        int
	op        string
	got, want bool
}

func (e *mismatchError) Error() string {
	return "client " + e.op + " oracle mismatch"
}

// TestShardedLifecycleIndependence drives a 2-shard server through the
// live lifecycle, then force-rejects shard 0 mid-run: shard 0 must latch
// ModeRejected and serve unguided while shard 1 stays guided, the
// aggregate mode must keep reporting guided, and traffic must stay
// correct throughout.
func TestShardedLifecycleIndependence(t *testing.T) {
	s := startServer(t, Config{
		Shards:        2,
		Workers:       2,
		Batch:         4,
		ProfileOps:    48,
		ProfileSlices: 2,
		ForceGuidance: true,
	})
	addr := s.Addr().String()

	const clients = 4
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	totals := make([]uint64, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			r := xrand.NewThread(31, ci)
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				if _, err := cl.Add(uint64(r.Intn(16)), 1); err != nil {
					errc <- err
					return
				}
				totals[ci]++
			}
		}(ci)
	}

	ctl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Wait for BOTH shards to go guided: each counts its own ProfileOps.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m0, err := ctl.InfoArg(InfoShardMode, 0)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := ctl.InfoArg(InfoShardMode, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ServingMode(m0) == ModeGuided && ServingMode(m1) == ModeGuided {
			break
		}
		if time.Now().After(deadline) {
			close(stopLoad)
			wg.Wait()
			t.Fatalf("shards never both guided (shard0 %v, shard1 %v)", ServingMode(m0), ServingMode(m1))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Force-reject shard 0 under load; shard 1 must not notice.
	if err := ctl.Ctl(CtlShardReject, 0); err != nil {
		t.Fatal(err)
	}
	if m, err := ctl.InfoArg(InfoShardMode, 0); err != nil || ServingMode(m) != ModeRejected {
		t.Fatalf("shard 0 mode = %v (err %v), want rejected", ServingMode(m), err)
	}
	if m, err := ctl.InfoArg(InfoShardMode, 1); err != nil || ServingMode(m) != ModeGuided {
		t.Fatalf("shard 1 mode = %v (err %v), want guided", ServingMode(m), err)
	}
	if m, err := ctl.Info(InfoMode); err != nil || ServingMode(m) != ModeGuided {
		t.Fatalf("aggregate mode = %v (err %v), want guided (rejected neighbor must not demote)", ServingMode(m), err)
	}
	if s.RejectReason() == "" {
		t.Fatal("RejectReason empty after CtlShardReject")
	}
	if s.Router().System(0).Guided() {
		t.Fatal("shard 0 gate still installed after forced rejection")
	}
	if !s.Router().System(1).Guided() {
		t.Fatal("shard 1 lost its gate when shard 0 was rejected")
	}

	// Keep serving with the split topology, then verify the sum.
	time.Sleep(50 * time.Millisecond)
	close(stopLoad)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var want uint64
	for _, n := range totals {
		want += n
	}
	var got uint64
	for k := 0; k < 16; k++ {
		if v, ok, err := ctl.Get(uint64(k)); err != nil {
			t.Fatal(err)
		} else if ok {
			got += v
		}
	}
	if got != want {
		t.Fatalf("sum across keys = %d, want %d acknowledged adds", got, want)
	}

	// Out-of-range reject is a bad request, not a crash.
	if st, _, err := ctl.Do(OpCtl, uint64(CtlShardReject), 99); err != nil || st != StatusBadRequest {
		t.Fatalf("out-of-range reject: status %d (err %v), want bad request", st, err)
	}
}
