package faultinject

import (
	"sync"
	"testing"

	"gstm/internal/libtm"
	"gstm/internal/tl2"
	"gstm/internal/txid"
)

func chaosIters(t *testing.T) int {
	if testing.Short() {
		return 60
	}
	return 300
}

// TestChaosTL2 hammers shared TL2 Vars from many goroutines while the
// injector spuriously aborts attempts and stretches the mid-commit locked
// window. Safety bar: the final sums are exact (no lost or duplicated
// increments), and a post-run sweep of every lock word finds nothing still
// locked.
func TestChaosTL2(t *testing.T) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"lazy", false}, {"eager", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const workers = 8
			iters := chaosIters(t)
			rt := tl2.New(tl2.Config{EagerWriteLock: mode.eager})
			inj := New(Config{Seed: 0xC4A05, SpuriousAbortProb: 0.3, CommitDelayProb: 0.3, CommitDelayYields: 8})
			rt.SetFaultInjector(inj)

			vars := make([]*tl2.Var[int], 4)
			for i := range vars {
				vars[i] = tl2.NewVar(0)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						err := rt.Atomic(txid.ThreadID(w), txid.TxnID(i%1024), func(tx *tl2.Tx) error {
							// Touch two vars per txn so write sets overlap
							// across workers and commit-time locking orders
							// multiple locks under injected delays.
							a, b := vars[w%len(vars)], vars[(w+1)%len(vars)]
							tl2.Write(tx, a, tl2.Read(tx, a)+1)
							tl2.Write(tx, b, tl2.Read(tx, b)+1)
							return nil
						})
						if err != nil {
							t.Errorf("worker %d iter %d: %v", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			total := 0
			for i, v := range vars {
				if _, locked := v.LockState(); locked {
					t.Errorf("var %d left locked after chaos run", i)
				}
				total += v.Peek()
			}
			if want := workers * iters * 2; total != want {
				t.Fatalf("lost updates under injected faults: total %d, want %d", total, want)
			}
			aborts, delays := inj.Counts()
			if aborts == 0 || delays == 0 {
				t.Fatalf("injector never fired (aborts=%d delays=%d): chaos run proves nothing", aborts, delays)
			}
			if _, engineAborts := rt.Stats(); engineAborts < aborts {
				t.Fatalf("engine counted %d aborts but injector forced %d", engineAborts, aborts)
			}
		})
	}
}

// TestChaosLibTM is the LibTM equivalent: object-granularity engine, both
// write modes, with a visible-reader sweep on top of the writer-lock sweep.
func TestChaosLibTM(t *testing.T) {
	for _, mode := range []struct {
		name string
		wm   libtm.WriteMode
	}{{"commit-time", libtm.WriteCommitTime}, {"encounter-time", libtm.WriteEncounterTime}} {
		t.Run(mode.name, func(t *testing.T) {
			const workers = 8
			iters := chaosIters(t)
			rt := libtm.New(libtm.Config{WriteMode: mode.wm})
			inj := New(Config{Seed: 0x11B7, SpuriousAbortProb: 0.3, CommitDelayProb: 0.3})
			rt.SetFaultInjector(inj)

			objs := make([]*libtm.Obj[int], 4)
			for i := range objs {
				objs[i] = libtm.NewObj(0)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						err := rt.Atomic(txid.ThreadID(w), txid.TxnID(i%1024), func(tx *libtm.Tx) error {
							o := objs[(w+i)%len(objs)]
							libtm.Write(tx, o, libtm.Read(tx, o)+1)
							return nil
						})
						if err != nil {
							t.Errorf("worker %d iter %d: %v", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			total := 0
			for i, o := range objs {
				if held, readers := o.LockState(); held || readers != 0 {
					t.Errorf("obj %d leaked after chaos run: writerHeld=%v readers=%d", i, held, readers)
				}
				total += o.Peek()
			}
			if want := workers * iters; total != want {
				t.Fatalf("lost updates under injected faults: total %d, want %d", total, want)
			}
			if aborts, _ := inj.Counts(); aborts == 0 {
				t.Fatal("injector never fired: chaos run proves nothing")
			}
		})
	}
}

// TestChaosInstrumentationPlane degrades the measurement plane instead of
// the engine: a stalling event sink and a starving gate. The STM must keep
// making progress — only measurement latency may suffer.
func TestChaosInstrumentationPlane(t *testing.T) {
	const workers = 8
	iters := chaosIters(t)
	rt := tl2.New(tl2.Config{})
	sink := NewStallingSink(nil, 16)
	gate := NewStarvingGate(nil, 16)
	rt.SetSink(sink)
	rt.SetGate(gate)

	v := tl2.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := rt.Atomic(txid.ThreadID(w), txid.TxnID(i%1024), func(tx *tl2.Tx) error {
					tl2.Write(tx, v, tl2.Read(tx, v)+1)
					return nil
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := v.Peek(); got != workers*iters {
		t.Fatalf("final value %d, want %d", got, workers*iters)
	}
	if sink.Events() == 0 {
		t.Fatal("stalling sink saw no events")
	}
	if gate.Arrivals() == 0 {
		t.Fatal("starving gate saw no arrivals")
	}
	if _, locked := v.LockState(); locked {
		t.Fatal("lock leaked under degraded instrumentation")
	}
}
