package faultinject

import (
	"testing"

	"gstm/internal/txid"
)

func pairOf(txn, thread int) txid.Pair {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}
}

// TestInjectorDeterminism: two injectors with the same config make
// identical decisions for every (pair, attempt); a different seed makes a
// different schedule. This is the property that lets a failing chaos run
// be replayed from its seed.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, SpuriousAbortProb: 0.3, CommitDelayProb: 0.3}
	a, b := New(cfg), New(cfg)
	other := New(Config{Seed: 43, SpuriousAbortProb: 0.3, CommitDelayProb: 0.3})

	differs := false
	for txn := 0; txn < 16; txn++ {
		for th := 0; th < 8; th++ {
			p := pairOf(txn, th)
			for attempt := 0; attempt < 8; attempt++ {
				if a.SpuriousAbort(p, attempt) != b.SpuriousAbort(p, attempt) {
					t.Fatalf("abort decision diverged at %v attempt %d", p, attempt)
				}
				if a.CommitDelay(p, attempt) != b.CommitDelay(p, attempt) {
					t.Fatalf("delay decision diverged at %v attempt %d", p, attempt)
				}
				if a.SpuriousAbort(p, attempt) != other.SpuriousAbort(p, attempt) {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced an identical abort schedule")
	}
	ca, _ := a.Counts()
	cb, _ := b.Counts()
	// Counts differ by the extra a.SpuriousAbort call in the seed-compare
	// branch; decisions are stateless so both saw the same schedule twice.
	if ca == 0 || cb == 0 {
		t.Fatalf("no faults fired at p=0.3 over 1024 decisions (counts %d/%d)", ca, cb)
	}
}

// TestInjectorRates: over many decisions the empirical fault rate must be
// in the right ballpark of the configured probability, and decisions for
// the two fault points must be independent (different salts).
func TestInjectorRates(t *testing.T) {
	inj := New(Config{Seed: 7, SpuriousAbortProb: 0.25, CommitDelayProb: 0.25, CommitDelayYields: 9})
	const n = 20000
	aborts, delays, both := 0, 0, 0
	for i := 0; i < n; i++ {
		p := pairOf(i%1024, i/1024)
		ab := inj.SpuriousAbort(p, i%7)
		d := inj.CommitDelay(p, i%7)
		if ab {
			aborts++
		}
		if d != 0 {
			if d != 9 {
				t.Fatalf("delay = %d, want configured 9", d)
			}
			delays++
		}
		if ab && d != 0 {
			both++
		}
	}
	check := func(name string, got int) {
		rate := float64(got) / n
		if rate < 0.20 || rate > 0.30 {
			t.Fatalf("%s rate = %.3f, want ≈0.25", name, rate)
		}
	}
	check("abort", aborts)
	check("delay", delays)
	// Independent salts: joint rate ≈ 0.0625, not ≈ 0.25 (which perfect
	// correlation would give).
	if joint := float64(both) / n; joint > 0.12 {
		t.Fatalf("fault points correlated: joint rate %.3f", joint)
	}
	ca, cd := inj.Counts()
	if int(ca) != aborts || int(cd) != delays {
		t.Fatalf("Counts() = %d/%d, observed %d/%d", ca, cd, aborts, delays)
	}
}

// TestZeroProbabilityNeverFires: a zero-valued config is a no-op injector.
func TestZeroProbabilityNeverFires(t *testing.T) {
	inj := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if inj.SpuriousAbort(pairOf(i, 0), 0) {
			t.Fatal("SpuriousAbort fired at p=0")
		}
		if inj.CommitDelay(pairOf(i, 0), 0) != 0 {
			t.Fatal("CommitDelay fired at p=0")
		}
	}
	if a, d := inj.Counts(); a != 0 || d != 0 {
		t.Fatalf("counts = %d/%d, want 0/0", a, d)
	}
}
