// Package faultinject is a deterministic, seeded fault injector for the
// STM engines' chaos tests. It implements the engines' FaultInjector hook
// (spurious aborts, delayed commits), the WAL's DiskFaults hook (fsync
// errors, torn writes, ENOSPC) and provides wrappers that degrade the
// instrumentation plane (stalled event sinks, starved gates).
//
// Every decision is a pure function of (seed, pair, attempt): fault
// schedules replay identically regardless of goroutine interleaving, so a
// failing chaos run can be reproduced from its seed alone. The injector
// deliberately has no mutable decision state — only observation counters.
package faultinject

import (
	"errors"
	"runtime"
	"sync/atomic"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// Config parameterizes an Injector. Zero probabilities disable the
// corresponding fault point.
type Config struct {
	// Seed keys every decision; two injectors with the same Seed and
	// probabilities produce the same fault schedule.
	Seed uint64

	// SpuriousAbortProb is the probability that a cleanly-executed attempt
	// is forced to abort and retry before its commit protocol runs.
	SpuriousAbortProb float64

	// CommitDelayProb is the probability that a commit holds its write
	// locks for CommitDelayYields extra scheduler yields before
	// publishing, widening the mid-commit window.
	CommitDelayProb float64

	// CommitDelayYields is the delay length; zero selects 4.
	CommitDelayYields int
}

// Injector implements tl2.FaultInjector and libtm.FaultInjector (the
// interfaces are structurally identical).
type Injector struct {
	cfg Config

	aborts atomic.Uint64
	delays atomic.Uint64
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.CommitDelayYields <= 0 {
		cfg.CommitDelayYields = 4
	}
	return &Injector{cfg: cfg}
}

// Decision salts: distinct fault points must draw independent rolls.
const (
	saltAbort = 0x5bd1e995
	saltDelay = 0x27d4eb2f
)

// mix is the splitmix64 finalizer: a full-avalanche 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a deterministic uniform sample in [0,1) for the decision
// identified by (salt, p, attempt).
func (i *Injector) roll(salt uint64, p txid.Pair, attempt int) float64 {
	h := mix(i.cfg.Seed ^ salt ^ uint64(p.Pack())<<20 ^ uint64(uint32(attempt)))
	return float64(h>>11) / (1 << 53)
}

// SpuriousAbort implements the engines' pre-commit fault point.
func (i *Injector) SpuriousAbort(p txid.Pair, attempt int) bool {
	if i.cfg.SpuriousAbortProb <= 0 {
		return false
	}
	if i.roll(saltAbort, p, attempt) < i.cfg.SpuriousAbortProb {
		i.aborts.Add(1)
		return true
	}
	return false
}

// CommitDelay implements the engines' mid-commit fault point.
func (i *Injector) CommitDelay(p txid.Pair, attempt int) int {
	if i.cfg.CommitDelayProb <= 0 {
		return 0
	}
	if i.roll(saltDelay, p, attempt) < i.cfg.CommitDelayProb {
		i.delays.Add(1)
		return i.cfg.CommitDelayYields
	}
	return 0
}

// Counts reports how many faults of each kind were actually injected.
// Chaos tests assert these are nonzero — a chaos run whose injector never
// fired proves nothing.
func (i *Injector) Counts() (spuriousAborts, commitDelays uint64) {
	return i.aborts.Load(), i.delays.Load()
}

// DiskConfig parameterizes a DiskInjector. Zero probabilities disable the
// corresponding fault point; a zero ENOSPCAfterBytes disables the
// disk-full point.
type DiskConfig struct {
	// Seed keys every decision, like Config.Seed.
	Seed uint64

	// FsyncErrorProb is the probability that one fsync call fails with
	// ErrFsyncInjected. The log must fail closed: no acknowledgement may
	// be issued for records whose durability the failed fsync covered.
	FsyncErrorProb float64

	// TornWriteProb is the probability that one write(2) is torn: only a
	// deterministic prefix of the buffer reaches the file and the write
	// returns ErrTornWrite. Recovery must treat the torn bytes as a
	// garbage tail and never replay a partial record.
	TornWriteProb float64

	// ENOSPCAfterBytes, when positive, fails any write that would push the
	// file past this many cumulative bytes, writing only the part that
	// fits and returning ErrNoSpace — a deterministic disk-full cliff.
	ENOSPCAfterBytes int64
}

// Fault sentinels returned by the disk fault points.
var (
	ErrFsyncInjected = errors.New("faultinject: injected fsync error")
	ErrTornWrite     = errors.New("faultinject: injected torn write")
	ErrNoSpace       = errors.New("faultinject: injected ENOSPC")
)

// DiskInjector implements wal.DiskFaults: deterministic fault decisions
// for the write-ahead log's file operations. Like Injector, every
// decision is a pure function of (seed, op ordinal[, offset]) — the WAL
// numbers its writes and fsyncs, so a fault schedule replays identically
// regardless of flusher timing — and the injector keeps only observation
// counters.
type DiskInjector struct {
	cfg DiskConfig

	fsyncErrs  atomic.Uint64
	tornWrites atomic.Uint64
	noSpace    atomic.Uint64
}

// NewDisk returns a DiskInjector for cfg.
func NewDisk(cfg DiskConfig) *DiskInjector { return &DiskInjector{cfg: cfg} }

// Disk decision salts.
const (
	saltFsync = 0x1b873593
	saltTorn  = 0xcc9e2d51
)

// rollOp returns a deterministic uniform sample in [0,1) for disk
// operation ordinal op under salt.
func (d *DiskInjector) rollOp(salt, op uint64) float64 {
	h := mix(d.cfg.Seed ^ salt ^ op)
	return float64(h>>11) / (1 << 53)
}

// WriteFault decides the fate of write ordinal op, which would append n
// bytes at file offset off. It returns how many bytes the caller must
// actually write and a non-nil error when the write is to be reported
// failed (torn or out of space). The returned prefix MUST still reach the
// file: a torn write is precisely a failure that left bytes behind.
func (d *DiskInjector) WriteFault(op uint64, off int64, n int) (int, error) {
	if d == nil {
		return n, nil
	}
	if lim := d.cfg.ENOSPCAfterBytes; lim > 0 && off+int64(n) > lim {
		keep := lim - off
		if keep < 0 {
			keep = 0
		}
		d.noSpace.Add(1)
		return int(keep), ErrNoSpace
	}
	if d.cfg.TornWriteProb > 0 && d.rollOp(saltTorn, op) < d.cfg.TornWriteProb {
		// Deterministic cut point strictly inside the buffer.
		cut := int(mix(d.cfg.Seed^saltTorn^op^0xabcd) % uint64(n))
		d.tornWrites.Add(1)
		return cut, ErrTornWrite
	}
	return n, nil
}

// FsyncFault decides the fate of fsync ordinal op.
func (d *DiskInjector) FsyncFault(op uint64) error {
	if d == nil || d.cfg.FsyncErrorProb <= 0 {
		return nil
	}
	if d.rollOp(saltFsync, op) < d.cfg.FsyncErrorProb {
		d.fsyncErrs.Add(1)
		return ErrFsyncInjected
	}
	return nil
}

// DiskCounts reports how many disk faults of each kind were injected.
func (d *DiskInjector) DiskCounts() (fsyncErrs, tornWrites, noSpace uint64) {
	return d.fsyncErrs.Load(), d.tornWrites.Load(), d.noSpace.Load()
}

// Sink mirrors tl2.EventSink / libtm.EventSink structurally so the
// wrappers below satisfy both.
type Sink interface {
	TxCommit(p txid.Pair, wv uint64, aborts int)
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// Gate mirrors tl2.Gate / libtm.Gate.
type Gate interface {
	Arrive(p txid.Pair) telemetry.GateOutcome
}

// StallingSink delays every event delivery by a fixed number of scheduler
// yields before forwarding to the inner sink — a slow observer. The STM
// must keep making progress; only measurement latency may suffer.
type StallingSink struct {
	inner  Sink
	yields int
	events atomic.Uint64
}

// NewStallingSink wraps inner with the given per-event stall.
func NewStallingSink(inner Sink, yields int) *StallingSink {
	return &StallingSink{inner: inner, yields: yields}
}

// Events returns how many events passed through the stall.
func (s *StallingSink) Events() uint64 { return s.events.Load() }

func (s *StallingSink) stall() {
	s.events.Add(1)
	for i := 0; i < s.yields; i++ {
		runtime.Gosched()
	}
}

// TxCommit implements Sink.
func (s *StallingSink) TxCommit(p txid.Pair, wv uint64, aborts int) {
	s.stall()
	if s.inner != nil {
		s.inner.TxCommit(p, wv, aborts)
	}
}

// TxAbort implements Sink.
func (s *StallingSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	s.stall()
	if s.inner != nil {
		s.inner.TxAbort(p, byWV, by, byKnown)
	}
}

// StarvingGate holds every arrival for a fixed number of scheduler yields
// before (optionally) delegating to an inner gate — an adversarially slow
// scheduler. Transactions must still complete, just later.
type StarvingGate struct {
	inner    Gate
	yields   int
	arrivals atomic.Uint64
}

// NewStarvingGate wraps inner (which may be nil) with the given per-arrival
// starvation.
func NewStarvingGate(inner Gate, yields int) *StarvingGate {
	return &StarvingGate{inner: inner, yields: yields}
}

// Arrivals returns how many arrivals were starved.
func (g *StarvingGate) Arrivals() uint64 { return g.arrivals.Load() }

// Arrive implements Gate.
func (g *StarvingGate) Arrive(p txid.Pair) telemetry.GateOutcome {
	g.arrivals.Add(1)
	for i := 0; i < g.yields; i++ {
		runtime.Gosched()
	}
	if g.inner != nil {
		out := g.inner.Arrive(p)
		if out == telemetry.GatePass && g.yields > 0 {
			out = telemetry.GateHold
		}
		return out
	}
	if g.yields > 0 {
		return telemetry.GateHold
	}
	return telemetry.GatePass
}
