// Package faultinject is a deterministic, seeded fault injector for the
// STM engines' chaos tests. It implements the engines' FaultInjector hook
// (spurious aborts, delayed commits) and provides wrappers that degrade
// the instrumentation plane (stalled event sinks, starved gates).
//
// Every decision is a pure function of (seed, pair, attempt): fault
// schedules replay identically regardless of goroutine interleaving, so a
// failing chaos run can be reproduced from its seed alone. The injector
// deliberately has no mutable decision state — only observation counters.
package faultinject

import (
	"runtime"
	"sync/atomic"

	"gstm/internal/txid"
)

// Config parameterizes an Injector. Zero probabilities disable the
// corresponding fault point.
type Config struct {
	// Seed keys every decision; two injectors with the same Seed and
	// probabilities produce the same fault schedule.
	Seed uint64

	// SpuriousAbortProb is the probability that a cleanly-executed attempt
	// is forced to abort and retry before its commit protocol runs.
	SpuriousAbortProb float64

	// CommitDelayProb is the probability that a commit holds its write
	// locks for CommitDelayYields extra scheduler yields before
	// publishing, widening the mid-commit window.
	CommitDelayProb float64

	// CommitDelayYields is the delay length; zero selects 4.
	CommitDelayYields int
}

// Injector implements tl2.FaultInjector and libtm.FaultInjector (the
// interfaces are structurally identical).
type Injector struct {
	cfg Config

	aborts atomic.Uint64
	delays atomic.Uint64
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.CommitDelayYields <= 0 {
		cfg.CommitDelayYields = 4
	}
	return &Injector{cfg: cfg}
}

// Decision salts: distinct fault points must draw independent rolls.
const (
	saltAbort = 0x5bd1e995
	saltDelay = 0x27d4eb2f
)

// mix is the splitmix64 finalizer: a full-avalanche 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a deterministic uniform sample in [0,1) for the decision
// identified by (salt, p, attempt).
func (i *Injector) roll(salt uint64, p txid.Pair, attempt int) float64 {
	h := mix(i.cfg.Seed ^ salt ^ uint64(p.Pack())<<20 ^ uint64(uint32(attempt)))
	return float64(h>>11) / (1 << 53)
}

// SpuriousAbort implements the engines' pre-commit fault point.
func (i *Injector) SpuriousAbort(p txid.Pair, attempt int) bool {
	if i.cfg.SpuriousAbortProb <= 0 {
		return false
	}
	if i.roll(saltAbort, p, attempt) < i.cfg.SpuriousAbortProb {
		i.aborts.Add(1)
		return true
	}
	return false
}

// CommitDelay implements the engines' mid-commit fault point.
func (i *Injector) CommitDelay(p txid.Pair, attempt int) int {
	if i.cfg.CommitDelayProb <= 0 {
		return 0
	}
	if i.roll(saltDelay, p, attempt) < i.cfg.CommitDelayProb {
		i.delays.Add(1)
		return i.cfg.CommitDelayYields
	}
	return 0
}

// Counts reports how many faults of each kind were actually injected.
// Chaos tests assert these are nonzero — a chaos run whose injector never
// fired proves nothing.
func (i *Injector) Counts() (spuriousAborts, commitDelays uint64) {
	return i.aborts.Load(), i.delays.Load()
}

// Sink mirrors tl2.EventSink / libtm.EventSink structurally so the
// wrappers below satisfy both.
type Sink interface {
	TxCommit(p txid.Pair, wv uint64, aborts int)
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// Gate mirrors tl2.Gate / libtm.Gate.
type Gate interface {
	Arrive(p txid.Pair)
}

// StallingSink delays every event delivery by a fixed number of scheduler
// yields before forwarding to the inner sink — a slow observer. The STM
// must keep making progress; only measurement latency may suffer.
type StallingSink struct {
	inner  Sink
	yields int
	events atomic.Uint64
}

// NewStallingSink wraps inner with the given per-event stall.
func NewStallingSink(inner Sink, yields int) *StallingSink {
	return &StallingSink{inner: inner, yields: yields}
}

// Events returns how many events passed through the stall.
func (s *StallingSink) Events() uint64 { return s.events.Load() }

func (s *StallingSink) stall() {
	s.events.Add(1)
	for i := 0; i < s.yields; i++ {
		runtime.Gosched()
	}
}

// TxCommit implements Sink.
func (s *StallingSink) TxCommit(p txid.Pair, wv uint64, aborts int) {
	s.stall()
	if s.inner != nil {
		s.inner.TxCommit(p, wv, aborts)
	}
}

// TxAbort implements Sink.
func (s *StallingSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	s.stall()
	if s.inner != nil {
		s.inner.TxAbort(p, byWV, by, byKnown)
	}
}

// StarvingGate holds every arrival for a fixed number of scheduler yields
// before (optionally) delegating to an inner gate — an adversarially slow
// scheduler. Transactions must still complete, just later.
type StarvingGate struct {
	inner    Gate
	yields   int
	arrivals atomic.Uint64
}

// NewStarvingGate wraps inner (which may be nil) with the given per-arrival
// starvation.
func NewStarvingGate(inner Gate, yields int) *StarvingGate {
	return &StarvingGate{inner: inner, yields: yields}
}

// Arrivals returns how many arrivals were starved.
func (g *StarvingGate) Arrivals() uint64 { return g.arrivals.Load() }

// Arrive implements Gate.
func (g *StarvingGate) Arrive(p txid.Pair) {
	g.arrivals.Add(1)
	for i := 0; i < g.yields; i++ {
		runtime.Gosched()
	}
	if g.inner != nil {
		g.inner.Arrive(p)
	}
}
