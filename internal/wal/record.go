// Package wal is the durability layer: a per-shard write-ahead log of the
// shard's transaction sequence (Tseq). Because every commit draws a unique
// write version wv while an event sink is installed (see DESIGN.md
// "Commit-path deviations"), the commit stream the EventSink hook delivers
// IS a total order of the shard's state changes — this package writes that
// order to disk as length-prefixed redo records, group-commits them with a
// configurable fsync window, periodically snapshots the shard's KV state
// to truncate the log, and replays snapshot+log on startup.
//
// Two orderings must not be confused:
//
//   - Append order: TxCommit fires on the committing goroutine after its
//     locks release, so records from different threads reach the log in
//     nondeterministic file order.
//   - Commit order: each record carries its wv. Replay sorts by wv, which
//     reconstructs the exact serialization the STM chose.
//
// Durability contract: WaitAcked(seq) returns once record seq is in the
// OS page cache (relaxed mode, surviving process kills) or fsynced
// (strict mode, FsyncInterval == 0, surviving power loss). The serving
// layer withholds client responses until then, so "acked" always implies
// "will be recovered".
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record kinds.
const (
	kindCommit byte = 1
	kindAbort  byte = 2
)

// Redo op codes inside a commit record.
const (
	opPut byte = 1
	opDel byte = 2
)

// Segment and snapshot file magics, 8 bytes each.
var (
	segMagic  = []byte("GSTMWAL1")
	snapMagic = []byte("GSTMSNP1")
)

// maxOps bounds ops per commit record; the server batches at most a few
// dozen operations per transaction, so anything near the u16 ceiling is
// corruption, not data.
const maxOps = 1 << 12

// maxPayload bounds one record's payload so a corrupt length prefix can
// never make recovery allocate or scan gigabytes.
const maxPayload = 16 + maxOps*17

// castagnoli is the CRC-32C table used for record and snapshot checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid record during replay. Scanning
// stops at the first corrupt frame: everything before it is the valid
// prefix, everything after is an unreachable tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// Op is one redo image inside a commit record: a Put of Val under Key, or
// a Del of Key.
type Op struct {
	Del bool
	Key uint64
	Val uint64
}

// CommitRecord is one logged commit: the transaction's identity, its
// global write version, how many aborts it suffered, and its redo images.
type CommitRecord struct {
	WV     uint64
	Site   uint16
	Thread uint16
	Aborts uint8
	Ops    []Op
}

// AbortRecord is one logged abort event, kept so recovery can reconstruct
// the full Tseq (commit + the aborts it caused) and pre-train the shard's
// TSA — the guided warmup.
type AbortRecord struct {
	ByWV   uint64
	Site   uint16
	Thread uint16
	Known  bool
}

// appendCommit appends the framed encoding of a commit record to dst:
//
//	u32 paylen | payload | u32 crc32c(payload)
//	payload = u8 kind | u8 aborts | u16 site | u16 thread | u64 wv |
//	          u16 nops | nops × (u8 op | u64 key | [u64 val if put])
func appendCommit(dst []byte, r CommitRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // paylen placeholder
	dst = append(dst, kindCommit, r.Aborts)
	dst = binary.BigEndian.AppendUint16(dst, r.Site)
	dst = binary.BigEndian.AppendUint16(dst, r.Thread)
	dst = binary.BigEndian.AppendUint64(dst, r.WV)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Ops)))
	for _, op := range r.Ops {
		if op.Del {
			dst = append(dst, opDel)
			dst = binary.BigEndian.AppendUint64(dst, op.Key)
			continue
		}
		dst = append(dst, opPut)
		dst = binary.BigEndian.AppendUint64(dst, op.Key)
		dst = binary.BigEndian.AppendUint64(dst, op.Val)
	}
	return sealFrame(dst, start)
}

// appendAbort appends the framed encoding of an abort record to dst.
func appendAbort(dst []byte, r AbortRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	known := byte(0)
	if r.Known {
		known = 1
	}
	dst = append(dst, kindAbort, known)
	dst = binary.BigEndian.AppendUint16(dst, r.Site)
	dst = binary.BigEndian.AppendUint16(dst, r.Thread)
	dst = binary.BigEndian.AppendUint64(dst, r.ByWV)
	return sealFrame(dst, start)
}

// sealFrame back-fills the length prefix at start and appends the payload
// checksum.
func sealFrame(dst []byte, start int) []byte {
	payload := dst[start+4:]
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// frameAt parses the frame starting at buf[off:]. It returns the payload
// and the offset just past the frame, or an error when the bytes from off
// on do not form a complete, checksummed frame (a torn or corrupt tail).
func frameAt(buf []byte, off int) (payload []byte, next int, err error) {
	if off+4 > len(buf) {
		return nil, 0, fmt.Errorf("%w: truncated length prefix", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(buf[off : off+4]))
	if n == 0 || n > maxPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if off+4+n+4 > len(buf) {
		return nil, 0, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	payload = buf[off+4 : off+4+n]
	sum := binary.BigEndian.Uint32(buf[off+4+n : off+8+n])
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, off + 8 + n, nil
}

// decodePayload decodes one checksummed payload into a commit or abort
// record (exactly one of the returns is meaningful; kind tells which).
func decodePayload(payload []byte) (kind byte, c CommitRecord, a AbortRecord, err error) {
	if len(payload) < 14 {
		return 0, c, a, fmt.Errorf("%w: payload of %d bytes", ErrCorrupt, len(payload))
	}
	kind = payload[0]
	switch kind {
	case kindCommit:
		c.Aborts = payload[1]
		c.Site = binary.BigEndian.Uint16(payload[2:4])
		c.Thread = binary.BigEndian.Uint16(payload[4:6])
		c.WV = binary.BigEndian.Uint64(payload[6:14])
		if len(payload) < 16 {
			return 0, c, a, fmt.Errorf("%w: commit header", ErrCorrupt)
		}
		nops := int(binary.BigEndian.Uint16(payload[14:16]))
		if nops > maxOps {
			return 0, c, a, fmt.Errorf("%w: %d ops", ErrCorrupt, nops)
		}
		body := payload[16:]
		c.Ops = make([]Op, 0, nops)
		for i := 0; i < nops; i++ {
			if len(body) < 9 {
				return 0, c, a, fmt.Errorf("%w: truncated op", ErrCorrupt)
			}
			switch body[0] {
			case opDel:
				c.Ops = append(c.Ops, Op{Del: true, Key: binary.BigEndian.Uint64(body[1:9])})
				body = body[9:]
			case opPut:
				if len(body) < 17 {
					return 0, c, a, fmt.Errorf("%w: truncated put", ErrCorrupt)
				}
				c.Ops = append(c.Ops, Op{Key: binary.BigEndian.Uint64(body[1:9]), Val: binary.BigEndian.Uint64(body[9:17])})
				body = body[17:]
			default:
				return 0, c, a, fmt.Errorf("%w: op code %d", ErrCorrupt, body[0])
			}
		}
		if len(body) != 0 {
			return 0, c, a, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body))
		}
		return kind, c, a, nil
	case kindAbort:
		if len(payload) != 14 {
			return 0, c, a, fmt.Errorf("%w: abort of %d bytes", ErrCorrupt, len(payload))
		}
		a.Known = payload[1] != 0
		a.Site = binary.BigEndian.Uint16(payload[2:4])
		a.Thread = binary.BigEndian.Uint16(payload[4:6])
		a.ByWV = binary.BigEndian.Uint64(payload[6:14])
		return kind, c, a, nil
	default:
		return 0, c, a, fmt.Errorf("%w: record kind %d", ErrCorrupt, kind)
	}
}

// scanSegment walks a segment image (magic header + frames), calling
// onCommit/onAbort for each structurally valid record in file order. It
// stops at the first invalid frame — a torn tail from a crash mid-write,
// or bit rot — and reports how many trailing bytes it abandoned. A missing
// or wrong magic abandons the whole file. scanSegment never panics on any
// input; FuzzWALReplay holds it to that.
func scanSegment(buf []byte, onCommit func(CommitRecord), onAbort func(AbortRecord)) (dropped int) {
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != string(segMagic) {
		return len(buf)
	}
	off := len(segMagic)
	for off < len(buf) {
		payload, next, err := frameAt(buf, off)
		if err != nil {
			return len(buf) - off
		}
		kind, c, a, err := decodePayload(payload)
		if err != nil {
			return len(buf) - off
		}
		if kind == kindCommit {
			onCommit(c)
		} else {
			onAbort(a)
		}
		off = next
	}
	return 0
}
