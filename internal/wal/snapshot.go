package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout:
//
//	8B magic | u64 snapWV | u64 count | count × (u64 key | u64 val) |
//	u32 crc32c(everything after the magic)
//
// Written to a temp file, fsynced, then renamed over the live name — the
// snapshot is either the complete old one or the complete new one, never
// a tear. The directory is fsynced after the rename so the new name
// itself is durable before any segment is deleted on its authority.
const snapName = "snapshot"

func snapPath(dir string) string { return filepath.Join(dir, snapName) }

// writeSnapshotFile durably replaces dir's snapshot with (snapWV, keys,
// vals).
func writeSnapshotFile(dir string, snapWV uint64, keys, vals []uint64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("wal: snapshot: %d keys, %d vals", len(keys), len(vals))
	}
	buf := make([]byte, 0, len(snapMagic)+16+16*len(keys)+4)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, snapWV)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(keys)))
	for i := range keys {
		buf = binary.BigEndian.AppendUint64(buf, keys[i])
		buf = binary.BigEndian.AppendUint64(buf, vals[i])
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapMagic):], castagnoli))

	tmp := snapPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapPath(dir)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readSnapshotFile loads dir's snapshot. ok is false when none exists. A
// structurally invalid snapshot is an error — unlike a torn segment tail
// it cannot be the residue of a crash (the rename is atomic), so serving
// as if the state were empty would silently lose acked data.
func readSnapshotFile(dir string) (snapWV uint64, keys, vals []uint64, ok bool, err error) {
	buf, rerr := os.ReadFile(snapPath(dir))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, nil, nil, false, nil
		}
		return 0, nil, nil, false, rerr
	}
	snapWV, keys, vals, err = decodeSnapshot(buf)
	if err != nil {
		return 0, nil, nil, false, fmt.Errorf("wal: snapshot %s: %w", snapPath(dir), err)
	}
	return snapWV, keys, vals, true, nil
}

// decodeSnapshot parses a snapshot image. Never panics on any input.
func decodeSnapshot(buf []byte) (snapWV uint64, keys, vals []uint64, err error) {
	if len(buf) < len(snapMagic)+16+4 || string(buf[:len(snapMagic)]) != string(snapMagic) {
		return 0, nil, nil, fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	body := buf[len(snapMagic) : len(buf)-4]
	sum := binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, nil, nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	snapWV = binary.BigEndian.Uint64(body[0:8])
	count := binary.BigEndian.Uint64(body[8:16])
	if uint64(len(body)-16) != count*16 {
		return 0, nil, nil, fmt.Errorf("%w: snapshot of %d entries, %d body bytes", ErrCorrupt, count, len(body)-16)
	}
	keys = make([]uint64, count)
	vals = make([]uint64, count)
	for i := uint64(0); i < count; i++ {
		keys[i] = binary.BigEndian.Uint64(body[16+16*i:])
		vals[i] = binary.BigEndian.Uint64(body[24+16*i:])
	}
	return snapWV, keys, vals, nil
}
