package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// DiskFaults is the chaos-testing hook for the log's file operations
// (internal/faultinject.DiskInjector implements it). Decisions must be
// deterministic functions of the operation ordinal (plus offset) so a
// fault schedule replays identically regardless of flusher timing. A nil
// DiskFaults disables all fault points.
type DiskFaults interface {
	// WriteFault rules on write ordinal op, appending n bytes at segment
	// offset off: it returns how many bytes must still reach the file
	// (the torn prefix) and a non-nil error to fail the write.
	WriteFault(op uint64, off int64, n int) (int, error)

	// FsyncFault rules on fsync ordinal op.
	FsyncFault(op uint64) error
}

// SnapshotSource produces consistent snapshots of the shard state the log
// protects; the serving layer implements it with a read-only STM scan.
type SnapshotSource interface {
	// ClockNow returns the shard's current version clock value.
	ClockNow() uint64

	// Scan returns a transactionally consistent view of the full shard
	// state, taken at a clock value at or after the preceding ClockNow
	// call. An error skips this snapshot cycle (the log keeps its
	// segments); it must not leave partial effects.
	Scan() (keys, vals []uint64, err error)
}

// Config parameterizes a Log.
type Config struct {
	// Dir is this shard's log directory (segments + snapshot). One Log
	// owns it exclusively.
	Dir string

	// Threads is the number of worker threads that stage redo images
	// (stager slots 0..Threads-1). Events from threads outside the range
	// — e.g. the snapshot scan's dedicated thread — are ignored.
	Threads int

	// FsyncInterval selects the durability mode. Zero is strict group
	// commit: every flushed batch is fsynced before its records ack, so
	// acked writes survive power loss. Positive is relaxed: records ack
	// once written to the OS page cache (surviving process kills, the
	// chaos tests' SIGKILL) and fsync runs at most once per interval,
	// bounding the loss window on OS or power failure to the interval.
	FsyncInterval time.Duration

	// SnapshotEvery triggers a snapshot+truncate cycle after that many
	// commit records (0 disables automatic snapshots; Snapshot can still
	// be called explicitly). Requires Source.
	SnapshotEvery int

	// LogAborts also logs abort events, letting recovery reconstruct the
	// full Tseq and pre-train the TSA (guided warmup). ~22 bytes per
	// abort.
	LogAborts bool

	Source  SnapshotSource
	Faults  DiskFaults
	Metrics *telemetry.Metrics
}

// Terminal log states.
var (
	// ErrFailed: a write or fsync failed; the log accepts no more records
	// and pending acks fail. The underlying cause wraps it.
	ErrFailed = errors.New("wal: log failed")
	// ErrCrashed: Crash was called (tests' in-process SIGKILL analogue).
	ErrCrashed = errors.New("wal: log crashed")
	// ErrClosed: the record arrived after Close began draining.
	ErrClosed = errors.New("wal: log closed")
)

// stager is one worker thread's redo staging area. The worker stages ops
// inside the transaction body; the commit event (on the same goroutine)
// stamps them with the wv and appends the record. No synchronization:
// slot t is touched only by thread t.
type stager struct {
	active  bool
	dropped bool // commit event arrived but the log refused the record
	site    uint16
	seq     uint64 // record seq of this thread's last appended commit
	ops     []Op
	_       [40]byte // keep adjacent stagers off one cache line
}

// Staging is the per-transaction redo builder handed out by Stage.
type Staging struct{ st *stager }

// Put stages a redo image: key holds val after this transaction.
func (s Staging) Put(key, val uint64) {
	s.st.ops = append(s.st.ops, Op{Key: key, Val: val})
}

// Del stages a delete redo image.
func (s Staging) Del(key uint64) {
	s.st.ops = append(s.st.ops, Op{Del: true, Key: key})
}

// Log is one shard's write-ahead log. It implements the gstm Observer
// (EventSink) interface; install it as the shard System's tap.
type Log struct {
	cfg    Config
	strict bool

	stagers []stager

	// mu guards the staging buffer and ack state; appenders hold it for
	// one encode, the flusher for one swap. ackCond signals acked / err /
	// crashed transitions.
	mu         sync.Mutex
	ackCond    *sync.Cond
	buf        []byte // encoded records awaiting flush
	spare      []byte // flusher's swap buffer
	bufSeq     uint64 // seq of the last record appended to buf
	commitsBuf int    // commit records currently in buf
	acked      uint64 // last record seq acknowledged per the mode's rule
	err        error  // terminal failure, wraps ErrFailed
	closing    bool
	crashed    bool

	// fileMu serializes all file I/O (flusher, Sync, Snapshot) and guards
	// the fields below.
	fileMu   sync.Mutex
	f        *os.File
	segIdx   int
	minSeg   int   // lowest on-disk segment index (pre-truncation tail)
	written  int64 // bytes written to the current segment
	writeOps uint64
	fsyncOps uint64
	unsynced int64
	lastSync time.Time

	commitsSinceSnap int

	kick        chan struct{}
	flusherDone chan struct{}
}

// Open creates (or reopens) the log in cfg.Dir: it recovers whatever the
// directory holds — snapshot plus every segment's valid prefix — into the
// returned Recovery, starts a fresh active segment above the highest
// existing one, and launches the group-commit flusher. The caller applies
// the Recovery to its store before installing the Log as a tap.
func Open(cfg Config) (*Log, *Recovery, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewDetached("wal")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, minSeg, maxSeg, err := recoverDir(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		cfg:         cfg,
		strict:      cfg.FsyncInterval == 0,
		stagers:     make([]stager, cfg.Threads),
		buf:         make([]byte, 0, 1<<16),
		spare:       make([]byte, 0, 1<<16),
		segIdx:      maxSeg + 1,
		minSeg:      minSeg,
		lastSync:    time.Now(),
		kick:        make(chan struct{}, 1),
		flusherDone: make(chan struct{}),
	}
	l.ackCond = sync.NewCond(&l.mu)
	f, err := createSegment(cfg.Dir, l.segIdx)
	if err != nil {
		return nil, nil, err
	}
	l.f = f
	l.written = int64(len(segMagic))
	go func() {
		// The pprof label makes the flusher identifiable in goroutine and
		// CPU profiles of a multi-shard server (one flusher per shard log).
		pprof.Do(context.Background(), pprof.Labels("gstm", "wal-flusher", "dir", cfg.Dir), func(context.Context) {
			l.flushLoop()
		})
	}()
	return l, rec, nil
}

func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.log", idx))
}

// createSegment creates segment idx with its magic header.
func createSegment(dir string, idx int) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: segment header: %w", err)
	}
	return f, nil
}

// Stage begins staging redo images for thread's current transaction at
// transaction site. Call it inside the transaction body (it is re-run
// fresh on every retry); the commit event stamps the staged ops with the
// commit's wv and appends the record. A transaction that stages ops but
// fails must be cleared with Abandon before the thread's next unstaged
// transaction on this shard.
func (l *Log) Stage(thread int, site uint16) Staging {
	st := &l.stagers[thread]
	st.active = true
	st.dropped = false
	st.site = site
	st.seq = 0
	st.ops = st.ops[:0]
	return Staging{st: st}
}

// Abandon discards thread's staged ops after a failed transaction, so
// they cannot attach to a later commit.
func (l *Log) Abandon(thread int) {
	st := &l.stagers[thread]
	st.active = false
	st.dropped = false
	st.seq = 0
	st.ops = st.ops[:0]
}

// TxCommit implements the event sink: it runs on the committing
// goroutine, after the commit published and released its locks. When the
// thread has staged redo ops it encodes them as a commit record carrying
// wv and appends it to the group-commit buffer.
func (l *Log) TxCommit(p txid.Pair, wv uint64, aborts int) {
	t := int(p.Thread)
	if t >= len(l.stagers) {
		return // snapshot scan or other out-of-pool thread
	}
	st := &l.stagers[t]
	if !st.active {
		return // read-only site, or nothing staged
	}
	st.active = false
	if len(st.ops) == 0 {
		return // mutating site that touched nothing (e.g. del of absent key)
	}
	ab := aborts
	if ab > 255 {
		ab = 255
	}
	rec := CommitRecord{WV: wv, Site: st.site, Thread: uint16(t), Aborts: uint8(ab), Ops: st.ops}
	l.mu.Lock()
	if l.err != nil || l.closing || l.crashed {
		st.dropped = true
		l.mu.Unlock()
		return
	}
	before := len(l.buf)
	l.buf = appendCommit(l.buf, rec)
	grew := len(l.buf) - before
	l.bufSeq++
	st.seq = l.bufSeq
	l.commitsBuf++
	l.mu.Unlock()
	l.cfg.Metrics.WALAppends.Inc(uint64(t))
	l.cfg.Metrics.WALBytes.Add(uint64(t), uint64(grew))
	l.kickFlusher()
}

// TxAbort implements the event sink: with LogAborts on, the abort is
// logged so recovery can rebuild the full Tseq for guided warmup. Abort
// records carry no redo and are never waited on.
func (l *Log) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	t := int(p.Thread)
	if !l.cfg.LogAborts || t >= len(l.stagers) {
		return
	}
	rec := AbortRecord{ByWV: byWV, Site: l.stagers[t].site, Thread: uint16(t), Known: byKnown}
	l.mu.Lock()
	if l.err != nil || l.closing || l.crashed {
		l.mu.Unlock()
		return
	}
	before := len(l.buf)
	l.buf = appendAbort(l.buf, rec)
	grew := len(l.buf) - before
	l.bufSeq++
	l.mu.Unlock()
	l.cfg.Metrics.WALAppends.Inc(uint64(t))
	l.cfg.Metrics.WALBytes.Add(uint64(t), uint64(grew))
	l.kickFlusher()
}

func (l *Log) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// ThreadSeq returns the record seq of thread's last appended commit, for
// asynchronous acknowledgment via WaitAcked: the committing worker grabs
// the seq and moves on, and a separate acker goroutine blocks on it
// before the client response is written. Seq 0 means the commit carried
// no record (nothing to wait for). The error is terminal: the log refused
// the record, so its durability can never be promised and the caller must
// fail the operation. Call it on the staging thread, between the commit
// and the thread's next Stage.
func (l *Log) ThreadSeq(thread int) (uint64, error) {
	st := &l.stagers[thread]
	if st.dropped {
		st.dropped = false
		return 0, l.terminalErr()
	}
	return st.seq, nil
}

// WaitThread blocks until thread's last committed record is acknowledged
// per the durability mode (written for relaxed, fsynced for strict) and
// returns nil. It returns the terminal error when the record was refused
// or the log failed before acknowledging it — the commit may have
// executed in memory, but its durability cannot be promised, so the
// caller must fail the operation. (ThreadSeq + WaitAcked is the split
// form for callers that overlap the wait with other work.)
func (l *Log) WaitThread(thread int) error {
	seq, err := l.ThreadSeq(thread)
	if err != nil {
		return err
	}
	if seq == 0 {
		return nil
	}
	return l.WaitAcked(seq)
}

// WaitAcked blocks until record seq is acknowledged, or the log reaches a
// terminal state first.
func (l *Log) WaitAcked(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.acked < seq && l.err == nil && !l.crashed {
		l.ackCond.Wait()
	}
	if l.acked >= seq {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrCrashed
}

// Failed reports whether the log is in a terminal failure state; the
// serving layer fails mutating operations fast instead of committing
// state it can no longer make durable.
func (l *Log) Failed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err != nil || l.crashed
}

// QueueDepth returns how many appended records the flusher has not yet
// acknowledged — the group-commit backlog. Exported as the per-shard
// gstm_wal_queue_depth gauge.
func (l *Log) QueueDepth() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bufSeq <= l.acked {
		return 0
	}
	return l.bufSeq - l.acked
}

func (l *Log) terminalErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.err != nil:
		return l.err
	case l.crashed:
		return ErrCrashed
	case l.closing:
		return ErrClosed
	default:
		return ErrFailed
	}
}

// fail latches the first terminal error and releases every waiter.
func (l *Log) fail(cause error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrFailed, cause)
	}
	l.ackCond.Broadcast()
	l.mu.Unlock()
}

// flushLoop is the group-commit flusher: it drains the staging buffer to
// the active segment in batches, fsyncs per the mode, and runs snapshot
// cycles. One goroutine per Log.
func (l *Log) flushLoop() {
	defer close(l.flusherDone)
	for {
		l.mu.Lock()
		closing, failed, crashed := l.closing, l.err != nil, l.crashed
		hasData := len(l.buf) > 0
		l.mu.Unlock()

		switch {
		case failed || crashed:
			return
		case closing:
			_ = l.flush(true) // final drain + fsync
			return
		case hasData:
			sync := l.strict || l.syncDue()
			if l.flush(sync) != nil {
				return
			}
			l.maybeSnapshot()
		default:
			l.fileMu.Lock()
			unsynced := l.unsynced
			due := l.cfg.FsyncInterval - time.Since(l.lastSync)
			l.fileMu.Unlock()
			if !l.strict && unsynced > 0 {
				if due <= 0 {
					if l.flush(true) != nil {
						return
					}
					continue
				}
				select {
				case <-l.kick:
				case <-time.After(due):
				}
				continue
			}
			<-l.kick
		}
	}
}

func (l *Log) syncDue() bool {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	return time.Since(l.lastSync) >= l.cfg.FsyncInterval
}

// flush writes the staged buffer to the active segment and, when sync is
// set (always, in strict mode), fsyncs it; then it acknowledges the
// drained records. On I/O failure the log fails terminally.
func (l *Log) flush(sync bool) error {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()

	l.mu.Lock()
	if l.err != nil || l.crashed {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrCrashed
		}
		return err
	}
	take := l.buf
	seqHi := l.bufSeq
	commits := l.commitsBuf
	l.buf = l.spare[:0]
	l.spare = nil
	l.commitsBuf = 0
	l.mu.Unlock()

	if len(take) > 0 {
		if err := l.writeSegment(take); err != nil {
			l.fail(err)
			return err
		}
		l.unsynced += int64(len(take))
	}
	if sync && l.unsynced > 0 {
		if err := l.fsyncSegment(); err != nil {
			l.fail(err)
			return err
		}
	}

	l.mu.Lock()
	l.spare = take[:0]
	l.commitsSinceSnap += commits
	if seqHi > l.acked {
		l.acked = seqHi
		l.ackCond.Broadcast()
	}
	l.mu.Unlock()
	return nil
}

// writeSegment writes b to the active segment through the fault hook.
// Called with fileMu held. A fault's torn prefix really reaches the file:
// that is the artifact recovery must cope with.
func (l *Log) writeSegment(b []byte) error {
	op := l.writeOps
	l.writeOps++
	allow, ferr := len(b), error(nil)
	if l.cfg.Faults != nil {
		allow, ferr = l.cfg.Faults.WriteFault(op, l.written, len(b))
	}
	if allow > 0 {
		n, werr := l.f.Write(b[:allow])
		l.written += int64(n)
		if werr != nil && ferr == nil {
			ferr = werr
		}
	}
	return ferr
}

// fsyncSegment fsyncs the active segment through the fault hook. Called
// with fileMu held.
func (l *Log) fsyncSegment() error {
	op := l.fsyncOps
	l.fsyncOps++
	if l.cfg.Faults != nil {
		if err := l.cfg.Faults.FsyncFault(op); err != nil {
			return err
		}
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	l.lastSync = time.Now()
	l.cfg.Metrics.WALFsyncs.Inc(0)
	return nil
}

// Sync forces a full flush+fsync of everything staged so far (graceful
// shutdown, tests).
func (l *Log) Sync() error { return l.flush(true) }

// Close drains and fsyncs the log, stops the flusher and closes the
// segment. Records arriving after Close starts are refused (their commits
// report ErrClosed); the serving layer stops its workers first, so a
// clean shutdown closes with every acked record on disk.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closing || l.crashed {
		l.mu.Unlock()
		<-l.flusherDone
		return nil
	}
	l.closing = true
	l.mu.Unlock()
	l.kickFlusher()
	<-l.flusherDone
	l.fileMu.Lock()
	err := l.f.Close()
	l.fileMu.Unlock()
	l.mu.Lock()
	lerr := l.err
	l.mu.Unlock()
	if lerr != nil {
		return lerr
	}
	return err
}

// Crash simulates a process kill for in-process chaos tests: the staged
// (unwritten) buffer is dropped, no final fsync runs, and the segment
// descriptor is closed as-is. Everything already written — every acked
// record, in relaxed mode via the page cache — survives, exactly like a
// SIGKILL; everything else is lost.
func (l *Log) Crash() {
	l.mu.Lock()
	if l.closing || l.crashed {
		l.mu.Unlock()
		<-l.flusherDone
		return
	}
	l.crashed = true
	l.buf = nil
	l.ackCond.Broadcast()
	l.mu.Unlock()
	l.kickFlusher()
	<-l.flusherDone
	l.fileMu.Lock()
	_ = l.f.Close()
	l.fileMu.Unlock()
}

// maybeSnapshot runs a snapshot+truncate cycle when the configured commit
// budget has elapsed. Called from the flusher only.
func (l *Log) maybeSnapshot() {
	if l.cfg.SnapshotEvery <= 0 || l.cfg.Source == nil {
		return
	}
	l.mu.Lock()
	due := l.commitsSinceSnap >= l.cfg.SnapshotEvery
	if due {
		l.commitsSinceSnap = 0
	}
	l.mu.Unlock()
	if due {
		_ = l.Snapshot()
	}
}

// Snapshot runs one snapshot+truncate cycle:
//
//  1. fsync and close the active segment, then rotate to a fresh one —
//     from here on, every record in the closed segments has wv ≤ the
//     clock value read next;
//  2. read the shard clock C0, then take a consistent read-only scan of
//     the shard state. TL2 guarantees the scan observes every commit with
//     wv ≤ C0: such a commit held all its write locks when it drew its
//     wv (before C0), and readers never read through a locked word;
//  3. write the snapshot file (tmp + fsync + rename) stamped snapWV = C0;
//  4. delete the closed segments — everything they held is covered by
//     the snapshot, because their records all carry wv ≤ C0.
//
// Replay applies the snapshot and then only records with wv > snapWV (in
// wv order); records below the stamp may survive in the active segment,
// and must not clobber the snapshot's newer values. A failed scan or
// snapshot write skips the cycle without data loss: rotation already
// happened, and the old segments are only deleted after the snapshot file
// is durable.
func (l *Log) Snapshot() error {
	if l.cfg.Source == nil {
		return fmt.Errorf("wal: no snapshot source")
	}
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if l.Failed() {
		return l.terminalErr()
	}

	// 1. Seal and rotate the active segment.
	if l.unsynced > 0 {
		if err := l.fsyncSegment(); err != nil {
			l.fail(err)
			return err
		}
	}
	nf, err := createSegment(l.cfg.Dir, l.segIdx+1)
	if err != nil {
		l.fail(err)
		return err
	}
	_ = l.f.Close()
	l.f = nf
	l.segIdx++
	l.written = int64(len(segMagic))
	sealedBelow := l.segIdx // segments < sealedBelow are frozen

	// 2. Clock, then consistent scan.
	c0 := l.cfg.Source.ClockNow()
	keys, vals, err := l.cfg.Source.Scan()
	if err != nil {
		return fmt.Errorf("wal: snapshot scan skipped: %w", err)
	}

	// 3. Durable snapshot file.
	if err := writeSnapshotFile(l.cfg.Dir, c0, keys, vals); err != nil {
		return fmt.Errorf("wal: snapshot write skipped: %w", err)
	}

	// 4. Truncate: the sealed segments are fully covered.
	for idx := l.minSeg; idx < sealedBelow; idx++ {
		_ = os.Remove(segPath(l.cfg.Dir, idx))
	}
	l.minSeg = sealedBelow
	l.cfg.Metrics.WALSnapshots.Inc(0)
	return nil
}

// Stats reports the log's cumulative activity (mirrors the telemetry
// counters; handy for tests with detached metrics).
func (l *Log) Stats() (appends, bytes, fsyncs, snapshots uint64) {
	return l.cfg.Metrics.WALAppends.Load(), l.cfg.Metrics.WALBytes.Load(),
		l.cfg.Metrics.WALFsyncs.Load(), l.cfg.Metrics.WALSnapshots.Load()
}
