package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gstm/internal/stats"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

// Recovery is everything Open salvaged from a log directory: the latest
// durable snapshot, every structurally valid record above the snapshot
// stamp, and the replay bookkeeping the serving layer needs.
type Recovery struct {
	// SnapWV is the snapshot's clock stamp (0 when no snapshot exists);
	// SnapKeys/SnapVals are its KV image.
	SnapWV   uint64
	SnapKeys []uint64
	SnapVals []uint64

	// Commits holds the commit records to replay — only those with
	// wv > SnapWV, sorted ascending by wv (the global commit order).
	// Records at or below the stamp are already inside the snapshot;
	// re-applying them would clobber newer snapshot state.
	Commits []CommitRecord

	// Aborts holds every salvaged abort record (all wvs): input for the
	// guided-warmup trace, irrelevant to state reconstruction.
	Aborts []AbortRecord

	// MaxWV is the highest durable write version — max(SnapWV, commit
	// wvs). The shard clock must be advanced past it before serving.
	MaxWV uint64

	// Segments is how many log segments were scanned; DroppedBytes is the
	// total garbage tail abandoned across them (torn final writes).
	Segments     int
	DroppedBytes int
}

// recoverDir loads dir's snapshot and scans every segment's valid prefix.
// It returns the recovery plus the lowest and highest segment indices
// found (minSeg 0 / maxSeg -1 when the directory has no segments).
func recoverDir(dir string) (*Recovery, int, int, error) {
	rec := &Recovery{}
	var err error
	rec.SnapWV, rec.SnapKeys, rec.SnapVals, _, err = readSnapshotFile(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	rec.MaxWV = rec.SnapWV
	_ = os.Remove(snapPath(dir) + ".tmp") // crash residue, superseded or partial

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, 0, 0, err
	}
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(n), "seg-%d.log", &i); err == nil {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	minSeg, maxSeg := 0, -1
	if len(idxs) > 0 {
		minSeg, maxSeg = idxs[0], idxs[len(idxs)-1]
	}
	for _, i := range idxs {
		buf, rerr := os.ReadFile(segPath(dir, i))
		if rerr != nil {
			return nil, 0, 0, rerr
		}
		rec.Segments++
		rec.DroppedBytes += scanSegment(buf,
			func(c CommitRecord) {
				if c.WV > rec.MaxWV {
					rec.MaxWV = c.WV
				}
				if c.WV > rec.SnapWV {
					rec.Commits = append(rec.Commits, c)
				}
			},
			func(a AbortRecord) { rec.Aborts = append(rec.Aborts, a) })
	}
	// File order within a segment is append order, not commit order:
	// commits from different threads interleave arbitrarily. Sort by wv to
	// recover the serialization the STM chose. Stable is irrelevant —
	// single-shard wvs are unique while a sink is installed (and the log
	// IS a sink), and the only duplicates cross-shard commits can leave on
	// one shard come from transactions with disjoint write sets there
	// (overlapping ones serialize: the later commit ticks after the
	// earlier advanceTo, so its exchanged wv is strictly greater), making
	// replay order between equal-wv records irrelevant.
	sort.Slice(rec.Commits, func(i, j int) bool { return rec.Commits[i].WV < rec.Commits[j].WV })
	return rec, minSeg, maxSeg, nil
}

// Replayed returns how many commit records replay will apply.
func (r *Recovery) Replayed() int { return len(r.Commits) }

// BuildTrace reconstructs the durable Tseq as a profiling trace: commits
// in wv order, each paired with the aborts attributed to it — exactly
// what trace.Collector.Finalize produces from a live run. Feeding it to
// gstm.BuildModel lets a recovering shard pre-train its TSA from the log
// and restart guided instead of cold (guided warmup). Returns nil when
// the log holds no commits.
func (r *Recovery) BuildTrace() *trace.Trace {
	if len(r.Commits) == 0 {
		return nil
	}
	byCommit := make(map[uint64][]txid.Packed)
	unattributed := 0
	for _, a := range r.Aborts {
		if !a.Known {
			unattributed++
		}
		p := txid.Pair{Txn: txid.TxnID(a.Site), Thread: txid.ThreadID(a.Thread)}
		byCommit[a.ByWV] = append(byCommit[a.ByWV], p.Pack())
	}
	tr := &trace.Trace{
		Seq:          make([]trace.State, 0, len(r.Commits)),
		AbortHist:    make(map[txid.ThreadID]*stats.Histogram),
		Commits:      len(r.Commits),
		Aborts:       len(r.Aborts),
		Unattributed: unattributed,
	}
	for _, c := range r.Commits {
		p := txid.Pair{Txn: txid.TxnID(c.Site), Thread: txid.ThreadID(c.Thread)}
		tr.Seq = append(tr.Seq, trace.NewState(byCommit[c.WV], p.Pack()))
		h := tr.AbortHist[txid.ThreadID(c.Thread)]
		if h == nil {
			h = stats.NewHistogram()
			tr.AbortHist[txid.ThreadID(c.Thread)] = h
		}
		_ = h.Add(int(c.Aborts))
	}
	return tr
}

// Apply folds the recovery into a fresh KV map — the sequential oracle
// the property tests compare STM replay against, and a convenient
// building block for simple embedders.
func (r *Recovery) Apply() map[uint64]uint64 {
	m := make(map[uint64]uint64, len(r.SnapKeys)+len(r.Commits))
	for i := range r.SnapKeys {
		m[r.SnapKeys[i]] = r.SnapVals[i]
	}
	for _, c := range r.Commits {
		for _, op := range c.Ops {
			if op.Del {
				delete(m, op.Key)
			} else {
				m[op.Key] = op.Val
			}
		}
	}
	return m
}
