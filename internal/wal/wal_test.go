package wal

import (
	"errors"
	"os"
	"testing"
	"time"

	"gstm/internal/txid"
)

// commitOne stages ops for thread and delivers the commit event with wv,
// mimicking what the serving layer + STM do.
func commitOne(l *Log, thread int, wv uint64, ops ...Op) {
	stg := l.Stage(thread, 1)
	for _, op := range ops {
		if op.Del {
			stg.Del(op.Key)
		} else {
			stg.Put(op.Key, op.Val)
		}
	}
	p := txid.Pair{Txn: 1, Thread: txid.ThreadID(thread)}
	l.TxCommit(p, wv, 0)
}

func openT(t *testing.T, cfg Config) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, Config{Dir: dir, Threads: 2})
	if rec.Replayed() != 0 || rec.SnapWV != 0 {
		t.Fatalf("fresh dir recovered %d records, snapWV %d", rec.Replayed(), rec.SnapWV)
	}
	commitOne(l, 0, 10, Op{Key: 1, Val: 100})
	commitOne(l, 1, 11, Op{Key: 2, Val: 200}, Op{Key: 3, Val: 300})
	commitOne(l, 0, 12, Op{Del: true, Key: 1})
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, Config{Dir: dir, Threads: 2})
	defer l2.Close()
	if got := rec2.Replayed(); got != 3 {
		t.Fatalf("replayed %d records, want 3", got)
	}
	for i := 1; i < len(rec2.Commits); i++ {
		if rec2.Commits[i].WV <= rec2.Commits[i-1].WV {
			t.Fatalf("commits not sorted by wv: %v then %v", rec2.Commits[i-1].WV, rec2.Commits[i].WV)
		}
	}
	if rec2.MaxWV != 12 {
		t.Fatalf("MaxWV = %d, want 12", rec2.MaxWV)
	}
	m := rec2.Apply()
	want := map[uint64]uint64{2: 200, 3: 300}
	if len(m) != len(want) || m[2] != 200 || m[3] != 300 {
		t.Fatalf("Apply = %v, want %v", m, want)
	}
}

func TestStrictAckIsDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1}) // FsyncInterval 0: strict
	commitOne(l, 0, 5, Op{Key: 7, Val: 70})
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	// Acked in strict mode means fsynced: simulate a kill (no final
	// flush), then recover.
	l.Crash()
	_, rec := openT(t, Config{Dir: dir, Threads: 1})
	if rec.Replayed() != 1 || rec.Commits[0].WV != 5 {
		t.Fatalf("strict acked record lost across crash: %+v", rec.Commits)
	}
}

func TestRelaxedAckSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1, FsyncInterval: time.Hour})
	for wv := uint64(1); wv <= 20; wv++ {
		commitOne(l, 0, wv, Op{Key: wv, Val: wv * 10})
		if err := l.WaitThread(0); err != nil {
			t.Fatalf("WaitThread(wv %d): %v", wv, err)
		}
	}
	_, _, fsyncs, _ := l.Stats()
	if fsyncs != 0 {
		t.Fatalf("relaxed mode fsynced %d times inside the window", fsyncs)
	}
	// Crash drops only the unwritten buffer; every acked record was
	// written to the (real) page cache and survives a process kill.
	l.Crash()
	_, rec := openT(t, Config{Dir: dir, Threads: 1})
	if rec.Replayed() != 20 {
		t.Fatalf("recovered %d of 20 acked records after crash", rec.Replayed())
	}
}

func TestAbandonDropsStagedOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1})
	defer l.Close()
	stg := l.Stage(0, 2)
	stg.Put(1, 111) // transaction fails: never commits
	l.Abandon(0)
	// Next transaction on the thread is read-only (no Stage); its commit
	// event must not pick up the abandoned ops.
	l.TxCommit(txid.Pair{Txn: 0, Thread: 0}, 99, 0)
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	appends, _, _, _ := l.Stats()
	if appends != 0 {
		t.Fatalf("abandoned ops were appended (%d appends)", appends)
	}
}

func TestCommitAfterCloseIsRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	commitOne(l, 0, 3, Op{Key: 1, Val: 1})
	err := l.WaitThread(0)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitThread after close = %v, want ErrClosed", err)
	}
}

// fakeSource is a map-backed SnapshotSource driven by the test: the test
// applies each committed record to the map before the snapshot runs, and
// clock always covers the highest wv handed out.
type fakeSource struct {
	clock uint64
	state map[uint64]uint64
}

func (f *fakeSource) ClockNow() uint64 { return f.clock }
func (f *fakeSource) Scan() (keys, vals []uint64, err error) {
	for k, v := range f.state {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals, nil
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	src := &fakeSource{state: map[uint64]uint64{}}
	l, _ := openT(t, Config{Dir: dir, Threads: 1, Source: src})
	oracle := map[uint64]uint64{}
	apply := func(wv uint64, op Op) {
		commitOne(l, 0, wv, op)
		if op.Del {
			delete(oracle, op.Key)
		} else {
			oracle[op.Key] = op.Val
		}
		src.clock = wv
	}
	for wv := uint64(1); wv <= 50; wv++ {
		apply(wv, Op{Key: wv % 7, Val: wv})
	}
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	// Source state mirrors everything committed so far.
	for k, v := range oracle {
		src.state[k] = v
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Records after the snapshot live only in the new active segment.
	for wv := uint64(51); wv <= 60; wv++ {
		apply(wv, Op{Key: wv % 7, Val: wv})
	}
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	l.Crash()

	names, _ := os.ReadDir(dir)
	segs := 0
	for _, n := range names {
		if len(n.Name()) > 4 && n.Name()[:4] == "seg-" {
			segs++
		}
	}
	if segs > 2 {
		t.Fatalf("truncation left %d segments", segs)
	}

	_, rec := openT(t, Config{Dir: dir, Threads: 1})
	if rec.SnapWV != 50 {
		t.Fatalf("snapWV = %d, want 50", rec.SnapWV)
	}
	if rec.Replayed() != 10 {
		t.Fatalf("replayed %d post-snapshot records, want 10", rec.Replayed())
	}
	got := rec.Apply()
	if len(got) != len(oracle) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, want %d", k, got[k], v)
		}
	}
}

// TestTruncatedSegmentPrefix cuts a valid segment at every byte offset
// and checks the scan recovers exactly a prefix of the original records —
// never a partial record, never a panic (satellite: replay property).
func TestTruncatedSegmentPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1})
	var wvs []uint64
	for wv := uint64(1); wv <= 8; wv++ {
		commitOne(l, 0, wv, Op{Key: wv, Val: wv}, Op{Del: wv%2 == 0, Key: wv + 100})
		wvs = append(wvs, wv)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	l.Crash()
	buf, err := os.ReadFile(segPath(dir, 0))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	for cut := 0; cut <= len(buf); cut++ {
		var got []uint64
		dropped := scanSegment(buf[:cut], func(c CommitRecord) { got = append(got, c.WV) }, func(AbortRecord) {})
		for i, wv := range got {
			if wv != wvs[i] {
				t.Fatalf("cut %d: record %d has wv %d, want %d (not a prefix)", cut, i, wv, wvs[i])
			}
		}
		if cut == len(buf) && (dropped != 0 || len(got) != len(wvs)) {
			t.Fatalf("full segment: %d records, %d dropped", len(got), dropped)
		}
	}
}

// TestReplayMatchesOracle is the property test: a pseudo-random op
// sequence, recovered after a crash, must fold to exactly the state a
// sequential map execution produces.
func TestReplayMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 4, FsyncInterval: time.Hour})
	oracle := map[uint64]uint64{}
	rng := uint64(0x9e3779b9)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for wv := uint64(1); wv <= 500; wv++ {
		thread := int(next() % 4)
		n := 1 + int(next()%3)
		ops := make([]Op, 0, n)
		for j := 0; j < n; j++ {
			k := next() % 32
			if next()%5 == 0 {
				ops = append(ops, Op{Del: true, Key: k})
			} else {
				ops = append(ops, Op{Key: k, Val: next()})
			}
		}
		commitOne(l, thread, wv, ops...)
		for _, op := range ops {
			if op.Del {
				delete(oracle, op.Key)
			} else {
				oracle[op.Key] = op.Val
			}
		}
		if err := l.WaitThread(thread); err != nil {
			t.Fatalf("WaitThread: %v", err)
		}
	}
	l.Crash()
	_, rec := openT(t, Config{Dir: dir, Threads: 4})
	if rec.Replayed() != 500 {
		t.Fatalf("replayed %d, want 500", rec.Replayed())
	}
	got := rec.Apply()
	if len(got) != len(oracle) {
		t.Fatalf("recovered %d keys, oracle has %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, oracle %d", k, got[k], v)
		}
	}
}

func TestAbortLoggingBuildsTrace(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 2, LogAborts: true})
	// Abort attributed to the commit at wv 7, then the commit itself.
	l.Stage(0, 3)
	l.TxAbort(txid.Pair{Txn: 3, Thread: 0}, 7, txid.Pair{Txn: 1, Thread: 1}, true)
	commitOne(l, 1, 7, Op{Key: 1, Val: 1})
	commitOne(l, 0, 8, Op{Key: 2, Val: 2})
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	l.Abandon(0)
	l.Crash()
	_, rec := openT(t, Config{Dir: dir, Threads: 2})
	if len(rec.Aborts) != 1 || rec.Aborts[0].ByWV != 7 {
		t.Fatalf("aborts = %+v, want one attributed to wv 7", rec.Aborts)
	}
	tr := rec.BuildTrace()
	if tr == nil || tr.Commits != 2 || tr.Aborts != 1 || len(tr.Seq) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Seq[0].Aborted) != 1 {
		t.Fatalf("wv-7 commit should carry the abort, got %v", tr.Seq[0].Aborted)
	}
}

// TestAppendZeroAlloc is the allocation gate on the hot path: once the
// staging slices are warm, one staged commit (Stage + Put + TxCommit)
// must not allocate — the append encodes into the group buffer in place.
func TestAppendZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Config{Dir: dir, Threads: 1, FsyncInterval: time.Hour})
	defer l.Close()
	p := txid.Pair{Txn: 1, Thread: 0}
	wv := uint64(0)
	commit := func() {
		wv++
		stg := l.Stage(0, 1)
		stg.Put(wv%64, wv)
		stg.Put((wv+1)%64, wv)
		l.TxCommit(p, wv, 1)
	}
	for i := 0; i < 256; i++ {
		commit() // warm the staging slice and group buffer
	}
	if err := l.WaitThread(0); err != nil {
		t.Fatalf("WaitThread: %v", err)
	}
	avg := testing.AllocsPerRun(200, commit)
	if avg != 0 {
		t.Fatalf("staged commit allocates %.1f allocs/op, want 0", avg)
	}
}
