package wal

import (
	"bytes"
	"testing"
)

// validSegment builds a well-formed segment image for fuzz seeding.
func validSegment() []byte {
	buf := append([]byte{}, segMagic...)
	buf = appendCommit(buf, CommitRecord{WV: 1, Site: 2, Thread: 0, Ops: []Op{{Key: 1, Val: 10}}})
	buf = appendAbort(buf, AbortRecord{ByWV: 1, Site: 3, Thread: 1, Known: true})
	buf = appendCommit(buf, CommitRecord{WV: 2, Site: 2, Thread: 1, Ops: []Op{{Del: true, Key: 1}, {Key: 9, Val: 90}}})
	return buf
}

// FuzzWALReplay holds the segment scanner to its contract on arbitrary
// bytes: never panic, never yield a record that does not round-trip its
// encoding (i.e. never a partial or corrupted record), and account every
// dropped byte to the abandoned tail.
func FuzzWALReplay(f *testing.F) {
	seg := validSegment()
	f.Add(seg)
	f.Add(seg[:len(seg)-3])        // torn final record
	f.Add(seg[:len(segMagic)])     // header only
	f.Add([]byte{})                // empty file
	f.Add([]byte("GSTMWAL1\x00"))  // garbage after magic
	f.Add([]byte("NOTMAGIC_data")) // wrong magic
	flip := append([]byte{}, seg...)
	flip[len(seg)/2] ^= 0x40 // bit rot mid-record
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		var commits []CommitRecord
		var aborts []AbortRecord
		dropped := scanSegment(data,
			func(c CommitRecord) { commits = append(commits, c) },
			func(a AbortRecord) { aborts = append(aborts, a) })
		if dropped < 0 || dropped > len(data) {
			t.Fatalf("dropped %d of %d bytes", dropped, len(data))
		}
		// Every yielded record must re-encode to a frame found intact in
		// the input — the scanner cannot have invented or truncated one.
		for _, c := range commits {
			frame := appendCommit(nil, c)
			if !bytes.Contains(data, frame) {
				t.Fatalf("scanned commit %+v does not round-trip", c)
			}
		}
		for _, a := range aborts {
			frame := appendAbort(nil, a)
			if !bytes.Contains(data, frame) {
				t.Fatalf("scanned abort %+v does not round-trip", a)
			}
		}
		// Snapshot decoding shares the never-panic contract.
		_, _, _, _ = decodeSnapshot(data)
	})
}
