package wal

import (
	"errors"
	"testing"

	"gstm/internal/faultinject"
)

// TestFsyncErrorFailsClosed: a strict-mode log whose fsync fails must
// refuse the ack (fail closed) — acknowledging a record whose durability
// the failed fsync covered would break the recovery contract.
func TestFsyncErrorFailsClosed(t *testing.T) {
	inj := faultinject.NewDisk(faultinject.DiskConfig{Seed: 42, FsyncErrorProb: 1})
	l, _ := openT(t, Config{Dir: t.TempDir(), Threads: 1, Faults: inj})
	commitOne(l, 0, 1, Op{Key: 1, Val: 1})
	err := l.WaitThread(0)
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("WaitThread = %v, want ErrFailed", err)
	}
	if !errors.Is(err, faultinject.ErrFsyncInjected) {
		t.Fatalf("terminal error should carry the cause, got %v", err)
	}
	if !l.Failed() {
		t.Fatal("log should be terminally failed after an fsync error")
	}
	fsyncErrs, _, _ := inj.DiskCounts()
	if fsyncErrs == 0 {
		t.Fatal("chaos run injected no fsync errors — proves nothing")
	}
	_ = l.Close()
}

// TestTornWriteRecoversPrefix: a torn write leaves a prefix of the batch
// on disk; the log fails closed and recovery salvages exactly the records
// whose frames survived intact — an append-order prefix, never a partial
// record.
func TestTornWriteRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.NewDisk(faultinject.DiskConfig{Seed: 7, TornWriteProb: 1})
	l, _ := openT(t, Config{Dir: dir, Threads: 1, Faults: inj})
	var wvs []uint64
	for wv := uint64(1); wv <= 16; wv++ {
		commitOne(l, 0, wv, Op{Key: wv, Val: wv * 2})
		wvs = append(wvs, wv)
	}
	if err := l.WaitThread(0); !errors.Is(err, ErrFailed) {
		t.Fatalf("WaitThread = %v, want ErrFailed after torn write", err)
	}
	_, torn, _ := inj.DiskCounts()
	if torn == 0 {
		t.Fatal("no torn writes injected")
	}
	_ = l.Close()

	_, rec := openT(t, Config{Dir: dir, Threads: 1})
	if rec.Replayed() >= 16 {
		t.Fatalf("recovered %d records through a torn write of the whole batch", rec.Replayed())
	}
	for i, c := range rec.Commits {
		if c.WV != wvs[i] {
			t.Fatalf("recovered records are not an append-order prefix: got wv %d at %d", c.WV, i)
		}
		if c.Ops[0].Val != c.WV*2 {
			t.Fatalf("partial record replayed: %+v", c)
		}
	}
}

// TestENOSPCFailsClosed: the deterministic disk-full cliff fails the log;
// everything acked before the cliff recovers.
func TestENOSPCFailsClosed(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.NewDisk(faultinject.DiskConfig{Seed: 3, ENOSPCAfterBytes: 256})
	l, _ := openT(t, Config{Dir: dir, Threads: 1})
	// First fill a healthy log, then reopen it with the cliff armed: the
	// acked records predate the failure.
	for wv := uint64(1); wv <= 4; wv++ {
		commitOne(l, 0, wv, Op{Key: wv, Val: wv})
		if err := l.WaitThread(0); err != nil {
			t.Fatalf("WaitThread: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openT(t, Config{Dir: dir, Threads: 1, Faults: inj})
	if rec.Replayed() != 4 {
		t.Fatalf("recovered %d, want 4", rec.Replayed())
	}
	failed := false
	for wv := uint64(5); wv <= 64; wv++ {
		commitOne(l2, 0, wv, Op{Key: wv, Val: wv})
		if err := l2.WaitThread(0); err != nil {
			if !errors.Is(err, ErrFailed) {
				t.Fatalf("WaitThread = %v, want ErrFailed", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("log never hit the 256-byte ENOSPC cliff")
	}
	_, _, noSpace := inj.DiskCounts()
	if noSpace == 0 {
		t.Fatal("no ENOSPC injected")
	}
	_ = l2.Close()

	// The pre-cliff records are still recoverable.
	_, rec2 := openT(t, Config{Dir: dir, Threads: 1})
	if rec2.Replayed() < 4 {
		t.Fatalf("lost pre-cliff records: %d", rec2.Replayed())
	}
	m := rec2.Apply()
	for wv := uint64(1); wv <= 4; wv++ {
		if m[wv] != wv {
			t.Fatalf("acked key %d lost across ENOSPC failure", wv)
		}
	}
}
